// Continuous-batching scheduler: FCFS admission policy unit tests, and a
// randomized engine stress test pinning down fairness (no overtaking, no
// starvation), KV tile reclamation, and lifetime-stats accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

}  // namespace

TEST(Scheduler, FcfsAdmissionRespectsBatchAndTileBudgets) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 2;
  opt.max_kv_tiles = 3;
  fs::Scheduler sched(opt);

  sched.enqueue(0, 64);    // 1 tile
  sched.enqueue(1, 65);    // 2 tiles
  sched.enqueue(2, 1);     // 1 tile
  EXPECT_EQ(sched.queued(), 3u);

  // Batch cap admits 0 and 1 (3 tiles); 2 stays queued behind the cap.
  const auto first = sched.admit();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(first[1], 1u);
  EXPECT_EQ(sched.admitted(), 2u);
  EXPECT_EQ(sched.tiles_reserved(), 3u);
  EXPECT_EQ(sched.state(2), fs::RequestState::kQueued);
  EXPECT_TRUE(sched.admit().empty());  // both budgets exhausted

  // Releasing 0 frees a slot and a tile; 2 is admitted next, FCFS.
  sched.release(0);
  EXPECT_EQ(sched.tiles_reserved(), 2u);
  const auto second = sched.admit();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 2u);
}

TEST(Scheduler, StrictFcfsNeverAdmitsPastBlockedHead) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.max_kv_tiles = 4;
  fs::Scheduler sched(opt);

  sched.enqueue(0, 64);       // 1 tile -> admitted
  sched.enqueue(1, 4 * 64);   // 4 tiles -> blocked (1 already reserved)
  sched.enqueue(2, 64);       // would fit, but must not overtake 1
  const auto admitted = sched.admit();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], 0u);
  EXPECT_EQ(sched.state(1), fs::RequestState::kQueued);
  EXPECT_EQ(sched.state(2), fs::RequestState::kQueued);

  // Once the head fits it goes first — the no-starvation guarantee.
  sched.release(0);
  const auto next = sched.admit();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0], 1u);
}

TEST(Scheduler, LifecycleAndValidation) {
  fs::SchedulerOptions opt;
  opt.max_kv_tiles = 2;
  fs::Scheduler sched(opt);

  // A reservation that could never fit is rejected at enqueue.
  EXPECT_THROW(sched.enqueue(0, 3 * 64), std::invalid_argument);
  EXPECT_THROW(sched.enqueue(0, 0), std::invalid_argument);

  sched.enqueue(0, 10);
  EXPECT_THROW(sched.on_prefill_done(0), std::logic_error);  // not admitted
  ASSERT_EQ(sched.admit().size(), 1u);
  sched.on_prefill_done(0);
  EXPECT_EQ(sched.state(0), fs::RequestState::kDecoding);
  sched.release(0);
  EXPECT_EQ(sched.state(0), fs::RequestState::kRetired);
  sched.release(0);  // idempotent
  EXPECT_EQ(sched.tiles_reserved(), 0u);

  // Releasing a queued request removes it from the queue.
  sched.enqueue(1, 10);
  sched.release(1);
  EXPECT_EQ(sched.queued(), 0u);
  EXPECT_TRUE(sched.admit().empty());

  EXPECT_THROW((void)sched.state(99), std::out_of_range);
  EXPECT_THROW(fs::Scheduler(fs::SchedulerOptions{0, 0}),
               std::invalid_argument);
}

TEST(Scheduler, EngineStressRandomArrivalsFairnessAndReclamation) {
  const fx::Model model(serving_config(), 0xacedL);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.scheduler.max_batch_size = 3;
  opt.scheduler.max_kv_tiles = 6;
  fs::DecodeEngine engine(model, opt);

  // Seeded random traffic: 12 requests, ragged prompts, small budgets,
  // staggered arrival ticks.
  std::mt19937_64 rng(20260725);
  std::uniform_int_distribution<std::size_t> len_dist(1, 100);
  std::uniform_int_distribution<std::size_t> budget_dist(1, 6);
  std::uniform_int_distribution<std::size_t> gap_dist(0, 3);
  constexpr std::size_t kRequests = 12;
  std::vector<std::size_t> lens, budgets, arrival;
  std::size_t t = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    lens.push_back(len_dist(rng));
    budgets.push_back(budget_dist(rng));
    arrival.push_back(t);
    t += gap_dist(rng);
  }

  std::vector<fs::DecodeEngine::RequestId> ids(kRequests, 0);
  std::vector<bool> submitted(kRequests, false), seen_admitted(kRequests,
                                                               false);
  std::vector<std::size_t> admission_order;
  fs::DecodeEngine::StepStats sum;
  std::size_t tick = 0;
  const std::size_t kMaxTicks = 1500;
  for (; tick < kMaxTicks; ++tick) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!submitted[i] && arrival[i] <= tick) {
        ids[i] = engine.submit(random_prompt(lens[i], hidden, 4000 + i),
                               budgets[i]);
        submitted[i] = true;
      }
    }
    sum += engine.step();

    // Back-pressure invariants hold on every tick.
    EXPECT_LE(engine.active(), opt.scheduler.max_batch_size);
    EXPECT_LE(engine.kv_tiles_reserved(), opt.scheduler.max_kv_tiles);
    EXPECT_LE(engine.kv_tiles_in_use(), engine.kv_tiles_reserved());

    for (std::size_t i = 0; i < kRequests; ++i) {
      if (submitted[i] && !seen_admitted[i] &&
          engine.state(ids[i]) != fs::RequestState::kQueued) {
        seen_admitted[i] = true;
        admission_order.push_back(i);
      }
    }
    const bool all_submitted =
        std::all_of(submitted.begin(), submitted.end(), [](bool b) { return b; });
    if (all_submitted && engine.queued() == 0 && engine.active() == 0) break;
  }
  ASSERT_LT(tick, kMaxTicks) << "stress run did not drain — starvation?";

  // No starvation, no overtaking: every request completed, and admissions
  // happened in strict submission (FCFS) order.
  ASSERT_EQ(admission_order.size(), kRequests);
  EXPECT_TRUE(std::is_sorted(admission_order.begin(), admission_order.end()));
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(engine.state(ids[i]), fs::RequestState::kRetired) << i;
    EXPECT_EQ(engine.context_length(ids[i]), lens[i] + budgets[i]) << i;
    EXPECT_FALSE(engine.hidden(ids[i]).empty()) << i;
  }

  // KV tiles are actually reclaimed at retirement.
  EXPECT_EQ(engine.kv_tiles_in_use(), 0u);
  EXPECT_EQ(engine.kv_tiles_reserved(), 0u);
  EXPECT_EQ(engine.kv_bytes(), 0u);

  // Lifetime accounting equals the sum of the per-step reports, field by
  // field — nothing runs outside a tick.
  const auto& life = engine.lifetime();
  EXPECT_EQ(life.active, sum.active);
  EXPECT_EQ(life.admitted, sum.admitted);
  EXPECT_EQ(life.prefill_chunks, sum.prefill_chunks);
  EXPECT_EQ(life.prefill_rows, sum.prefill_rows);
  EXPECT_EQ(life.decoded, sum.decoded);
  EXPECT_EQ(life.retired, sum.retired);
  EXPECT_EQ(life.activations_clipped, sum.activations_clipped);
  EXPECT_EQ(life.attention.gemm1.checks, sum.attention.gemm1.checks);
  EXPECT_EQ(life.attention.gemm1.flagged, sum.attention.gemm1.flagged);
  EXPECT_EQ(life.attention.exp_check.checks, sum.attention.exp_check.checks);
  EXPECT_EQ(life.attention.gemm2.checks, sum.attention.gemm2.checks);
  EXPECT_EQ(life.attention.range_corrections,
            sum.attention.range_corrections);
  EXPECT_EQ(life.attention.faults_injected, sum.attention.faults_injected);
  EXPECT_EQ(life.linear.checks, sum.linear.checks);
  EXPECT_EQ(life.linear.flagged, sum.linear.flagged);

  // Totals are intrinsic to the traffic, not the schedule.
  std::size_t total_prompt = 0, total_decode = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    total_prompt += lens[i];
    total_decode += budgets[i];
  }
  EXPECT_EQ(sum.prefill_rows, total_prompt);
  EXPECT_EQ(sum.decoded, total_decode);
  EXPECT_EQ(sum.admitted, kRequests);
  EXPECT_EQ(sum.retired, kRequests);
  EXPECT_EQ(sum.active, total_prompt + total_decode);
  // Clean run stays (essentially) clean: decode ticks verify per token
  // (chunk = 1), where the relative threshold can trip on rounding noise.
  EXPECT_LE(sum.attention.total_detected(),
            sum.attention.gemm1.checks / 1000 + 2);
}
