// Priority-aware continuous-batching scheduler: admission policy unit tests
// (per-class FCFS, priority overtaking, typed never-admittable rejection,
// preemption re-queueing), plus engine stress tests pinning down fairness,
// pool reclamation, lifetime-stats accounting, and the recompute-on-
// readmission guarantee (a preempted request replays its exact trajectory).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

}  // namespace

TEST(Scheduler, FcfsAdmissionRespectsBatchCapAndTileHint) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 2;
  fs::Scheduler sched(opt);

  EXPECT_EQ(sched.enqueue(0, 64), fs::EnqueueResult::kAccepted);
  EXPECT_EQ(sched.enqueue(1, 65), fs::EnqueueResult::kAccepted);
  EXPECT_EQ(sched.enqueue(2, 1), fs::EnqueueResult::kAccepted);
  EXPECT_EQ(sched.queued(), 3u);

  // Batch cap admits 0 and 1; 2 stays queued behind the cap.
  const auto first = sched.admit();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(first[1], 1u);
  EXPECT_EQ(sched.admitted(), 2u);
  EXPECT_EQ(sched.state(2), fs::RequestState::kQueued);
  EXPECT_TRUE(sched.admit().empty());  // cap exhausted

  // Releasing 0 frees a slot; 2 is admitted next, FCFS.
  sched.release(0);
  const auto second = sched.admit();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 2u);

  // The allocatable-tile hint throttles admissions even under the cap.
  fs::Scheduler hinted({/*max_batch_size=*/4, 0});
  hinted.enqueue(0, 10);
  hinted.enqueue(1, 10);
  hinted.enqueue(2, 10);
  EXPECT_TRUE(hinted.admit(/*new_tile_hint=*/0).empty());
  const auto one = hinted.admit(/*new_tile_hint=*/1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);  // still FCFS under the hint
  EXPECT_EQ(hinted.admit(/*new_tile_hint=*/SIZE_MAX).size(), 2u);
}

TEST(Scheduler, PriorityClassesOvertakeButStayFcfsWithinClass) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 3;
  fs::Scheduler sched(opt);

  sched.enqueue(0, 10, fs::Priority::kLow);
  sched.enqueue(1, 10, fs::Priority::kNormal);
  sched.enqueue(2, 10, fs::Priority::kHigh);
  sched.enqueue(3, 10, fs::Priority::kHigh);
  sched.enqueue(4, 10, fs::Priority::kLow);

  // High class drains first (FCFS within it), then normal, then low.
  const auto admitted = sched.admit();
  ASSERT_EQ(admitted.size(), 3u);
  EXPECT_EQ(admitted[0], 2u);
  EXPECT_EQ(admitted[1], 3u);
  EXPECT_EQ(admitted[2], 1u);
  EXPECT_EQ(sched.state(0), fs::RequestState::kQueued);
  EXPECT_EQ(sched.priority(2), fs::Priority::kHigh);

  sched.release(2);
  sched.release(3);
  const auto lows = sched.admit();
  ASSERT_EQ(lows.size(), 2u);
  EXPECT_EQ(lows[0], 0u);  // low class is FCFS too: 0 before 4
  EXPECT_EQ(lows[1], 4u);
}

TEST(Scheduler, SjfOrdersWithinClassShortestFirst) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 8;
  opt.sjf_within_class = true;
  fs::Scheduler sched(opt);

  // One class, ragged job sizes: admission picks shortest-first, with
  // FCFS as the tie-break (equal sizes never reorder).
  sched.enqueue(0, 200, fs::Priority::kNormal, /*job_rows=*/100);
  sched.enqueue(1, 200, fs::Priority::kNormal, /*job_rows=*/5);
  sched.enqueue(2, 200, fs::Priority::kNormal, /*job_rows=*/50);
  sched.enqueue(3, 200, fs::Priority::kNormal, /*job_rows=*/5);
  const auto order = sched.admit();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);  // tie with 1: FCFS among equals
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);

  // Priority classes still sweep high-to-low; SJF only reorders inside.
  fs::Scheduler classes(opt);
  classes.enqueue(0, 200, fs::Priority::kNormal, 1);
  classes.enqueue(1, 200, fs::Priority::kHigh, 90);
  classes.enqueue(2, 200, fs::Priority::kHigh, 10);
  const auto swept = classes.admit();
  ASSERT_EQ(swept.size(), 3u);
  EXPECT_EQ(swept[0], 2u);  // shortest high job
  EXPECT_EQ(swept[1], 1u);  // longer high job still beats normal
  EXPECT_EQ(swept[2], 0u);
}

TEST(Scheduler, SjfNeverStarvesTheLongJob) {
  // A long job at the head of the queue with an endless stream of shorter
  // arrivals: pure SJF would starve it forever.  The overtake bound turns
  // that into a hard latency guarantee — after sjf_max_overtakes
  // admissions it goes next, whatever is behind it.
  fs::SchedulerOptions opt;
  opt.max_batch_size = 1;
  opt.sjf_within_class = true;
  opt.sjf_max_overtakes = 3;
  fs::Scheduler sched(opt);

  sched.enqueue(0, 500, fs::Priority::kNormal, /*job_rows=*/400);  // long
  std::size_t next_id = 1;
  for (std::size_t i = 0; i < 3; ++i) {
    sched.enqueue(next_id++, 500, fs::Priority::kNormal, /*job_rows=*/1);
  }

  std::size_t admissions_until_long = 0;
  for (std::size_t round = 0; round < 20; ++round) {
    const auto got = sched.admit();
    ASSERT_EQ(got.size(), 1u);
    ++admissions_until_long;
    if (got[0] == 0u) break;  // the long job finally ran
    sched.release(got[0]);
    // Keep the pressure on: a fresh short job arrives every round.
    sched.enqueue(next_id++, 500, fs::Priority::kNormal, /*job_rows=*/1);
  }
  // Exactly the bound: 3 overtakes, then the long job is admitted 4th.
  EXPECT_EQ(admissions_until_long, opt.sjf_max_overtakes + 1);

  // Default FCFS is untouched by the new fields: job_rows is ignored.
  fs::Scheduler fcfs(fs::SchedulerOptions{1, 0});
  fcfs.enqueue(0, 500, fs::Priority::kNormal, 400);
  fcfs.enqueue(1, 500, fs::Priority::kNormal, 1);
  const auto first = fcfs.admit();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 0u);
}

TEST(Engine, SjfFlagReordersAdmissionWithoutChangingResults) {
  // Prefill-heavy queue under a batch cap of 1: with SJF the short prompt
  // overtakes the long one and retires first; results (per request) stay
  // bit-identical to the FCFS run — scheduling is a latency decision.
  const fx::Model model(serving_config(), 0x5f1);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF longp = random_prompt(150, hidden, 31);
  const ft::MatrixF shortp = random_prompt(5, hidden, 32);

  auto run = [&](bool sjf, std::size_t& long_done, std::size_t& short_done,
                 std::vector<float>& hl, std::vector<float>& hs) {
    fs::EngineOptions opt;
    opt.scheduler.max_batch_size = 1;
    opt.scheduler.sjf_within_class = sjf;
    fs::DecodeEngine engine(model, opt);
    const auto a = engine.submit(longp, 4);
    const auto b = engine.submit(shortp, 4);
    long_done = short_done = 0;
    for (std::size_t tick = 1; tick <= 400; ++tick) {
      engine.step();
      if (long_done == 0 && engine.state(a) == fs::RequestState::kRetired) {
        long_done = tick;
      }
      if (short_done == 0 && engine.state(b) == fs::RequestState::kRetired) {
        short_done = tick;
      }
      if (engine.queued() == 0 && engine.active() == 0) break;
    }
    const auto sa = engine.hidden(a);
    const auto sb = engine.hidden(b);
    hl.assign(sa.begin(), sa.end());
    hs.assign(sb.begin(), sb.end());
  };

  std::size_t fcfs_long = 0, fcfs_short = 0, sjf_long = 0, sjf_short = 0;
  std::vector<float> fcfs_hl, fcfs_hs, sjf_hl, sjf_hs;
  run(false, fcfs_long, fcfs_short, fcfs_hl, fcfs_hs);
  run(true, sjf_long, sjf_short, sjf_hl, sjf_hs);

  EXPECT_LT(fcfs_long, fcfs_short) << "FCFS serves in arrival order";
  EXPECT_LT(sjf_short, sjf_long) << "SJF lets the short job overtake";
  EXPECT_LT(sjf_short, fcfs_short) << "the short job's latency improves";
  ASSERT_EQ(fcfs_hl.size(), sjf_hl.size());
  for (std::size_t c = 0; c < fcfs_hl.size(); ++c) {
    EXPECT_EQ(fcfs_hl[c], sjf_hl[c]) << c;
    EXPECT_EQ(fcfs_hs[c], sjf_hs[c]) << c;
  }
}

TEST(Scheduler, EnqueueRejectsNeverAdmittableWithTypedResult) {
  // With paging there is no worst-case reservation, but a request whose
  // context ceiling exceeds the whole pool can never run: rejected with a
  // typed result, never an exception, and never queued.
  fs::SchedulerOptions opt;
  opt.max_kv_tiles = 2;
  fs::Scheduler sched(opt);

  EXPECT_EQ(sched.enqueue(0, 3 * 64), fs::EnqueueResult::kRejectedTooLarge);
  EXPECT_EQ(sched.queued(), 0u);
  EXPECT_THROW((void)sched.state(0), std::out_of_range);  // never registered
  EXPECT_TRUE(sched.admit().empty());

  // Exactly at the pool ceiling is admittable.
  EXPECT_EQ(sched.enqueue(0, 2 * 64), fs::EnqueueResult::kAccepted);
  EXPECT_EQ(sched.admit().size(), 1u);

  // max_tokens == 0 stays a programming error, not load shedding.
  EXPECT_THROW(sched.enqueue(1, 0), std::invalid_argument);
}

TEST(Scheduler, PreemptRequeuesAtFrontOfItsClass) {
  fs::SchedulerOptions opt;
  opt.max_batch_size = 2;
  fs::Scheduler sched(opt);

  sched.enqueue(0, 10, fs::Priority::kNormal);
  sched.enqueue(1, 10, fs::Priority::kNormal);
  sched.enqueue(2, 10, fs::Priority::kNormal);
  ASSERT_EQ(sched.admit().size(), 2u);  // 0, 1 admitted; 2 waits

  // Preempting 1 re-queues it *ahead* of 2: delayed, never starved behind
  // later arrivals.
  sched.preempt(1);
  EXPECT_EQ(sched.state(1), fs::RequestState::kQueued);
  EXPECT_EQ(sched.admitted(), 1u);
  EXPECT_EQ(sched.preemptions(), 1u);
  const auto next = sched.admit();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0], 1u);

  // Only admitted requests can be preempted.
  EXPECT_THROW(sched.preempt(2), std::logic_error);
  sched.release(0);
  EXPECT_THROW(sched.preempt(0), std::logic_error);
}

TEST(Scheduler, LifecycleAndValidation) {
  fs::Scheduler sched;

  sched.enqueue(0, 10);
  EXPECT_THROW(sched.on_prefill_done(0), std::logic_error);  // not admitted
  ASSERT_EQ(sched.admit().size(), 1u);
  sched.on_prefill_done(0);
  EXPECT_EQ(sched.state(0), fs::RequestState::kDecoding);
  sched.release(0);
  EXPECT_EQ(sched.state(0), fs::RequestState::kRetired);
  sched.release(0);  // idempotent
  EXPECT_EQ(sched.admitted(), 0u);

  // Releasing a queued request removes it from its class queue.
  sched.enqueue(1, 10, fs::Priority::kHigh);
  sched.release(1);
  EXPECT_EQ(sched.queued(), 0u);
  EXPECT_TRUE(sched.admit().empty());

  EXPECT_THROW((void)sched.state(99), std::out_of_range);
  EXPECT_THROW(fs::Scheduler(fs::SchedulerOptions{0, 0}),
               std::invalid_argument);
}

TEST(Engine, SubmitRejectsRequestLargerThanThePool) {
  const fx::Model model(serving_config(), 0x91);
  fs::EngineOptions opt;
  opt.scheduler.max_kv_tiles = 2;  // 128-token pool
  fs::DecodeEngine engine(model, opt);
  // Prompt fits max_context but its ceiling (prompt + unbounded budget ->
  // max_context) can never fit two tiles.
  EXPECT_THROW(engine.submit(random_prompt(200, model.config().hidden, 1)),
               std::invalid_argument);
  // A budgeted request under the ceiling is accepted.
  const auto id = engine.submit(random_prompt(100, model.config().hidden, 2),
                                /*max_new_tokens=*/20);
  EXPECT_EQ(engine.state(id), fs::RequestState::kQueued);
}

TEST(Scheduler, EngineStressRandomArrivalsFairnessAndReclamation) {
  const fx::Model model(serving_config(), 0xacedL);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.scheduler.max_batch_size = 3;
  // Pool sized so the worst case (3 concurrent contexts of <= 106 tokens =
  // 2 tiles each) always fits: on-demand paging never has to preempt, so
  // the strict-FCFS fairness properties are exact.
  opt.scheduler.max_kv_tiles = 6;
  fs::DecodeEngine engine(model, opt);

  // Seeded random traffic: 12 requests, ragged prompts, small budgets,
  // staggered arrival ticks.
  std::mt19937_64 rng(20260725);
  std::uniform_int_distribution<std::size_t> len_dist(1, 100);
  std::uniform_int_distribution<std::size_t> budget_dist(1, 6);
  std::uniform_int_distribution<std::size_t> gap_dist(0, 3);
  constexpr std::size_t kRequests = 12;
  std::vector<std::size_t> lens, budgets, arrival;
  std::size_t t = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    lens.push_back(len_dist(rng));
    budgets.push_back(budget_dist(rng));
    arrival.push_back(t);
    t += gap_dist(rng);
  }

  std::vector<fs::DecodeEngine::RequestId> ids(kRequests, 0);
  std::vector<bool> submitted(kRequests, false), seen_admitted(kRequests,
                                                               false);
  std::vector<std::size_t> admission_order;
  fs::DecodeEngine::StepStats sum;
  std::size_t tick = 0;
  const std::size_t kMaxTicks = 1500;
  for (; tick < kMaxTicks; ++tick) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!submitted[i] && arrival[i] <= tick) {
        ids[i] = engine.submit(random_prompt(lens[i], hidden, 4000 + i),
                               budgets[i]);
        submitted[i] = true;
      }
    }
    sum += engine.step();

    // Back-pressure invariants hold on every tick: the batch cap, and the
    // pool capacity (referenced tiles can never exceed it).
    EXPECT_LE(engine.active(), opt.scheduler.max_batch_size);
    EXPECT_LE(engine.kv_tiles_in_use(), opt.scheduler.max_kv_tiles);
    EXPECT_LE(engine.pool().allocated(), opt.scheduler.max_kv_tiles);

    for (std::size_t i = 0; i < kRequests; ++i) {
      if (submitted[i] && !seen_admitted[i] &&
          engine.state(ids[i]) != fs::RequestState::kQueued) {
        seen_admitted[i] = true;
        admission_order.push_back(i);
      }
    }
    const bool all_submitted =
        std::all_of(submitted.begin(), submitted.end(), [](bool b) { return b; });
    if (all_submitted && engine.queued() == 0 && engine.active() == 0) break;
  }
  ASSERT_LT(tick, kMaxTicks) << "stress run did not drain — starvation?";

  // No starvation, no overtaking: every request completed, and admissions
  // happened in strict submission (FCFS) order — all one priority class.
  ASSERT_EQ(admission_order.size(), kRequests);
  EXPECT_TRUE(std::is_sorted(admission_order.begin(), admission_order.end()));
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(engine.state(ids[i]), fs::RequestState::kRetired) << i;
    EXPECT_EQ(engine.context_length(ids[i]), lens[i] + budgets[i]) << i;
    EXPECT_FALSE(engine.hidden(ids[i]).empty()) << i;
  }

  // KV tiles are actually reclaimed at retirement (cached prefix tiles may
  // stay materialized, but nothing stays *referenced*).
  EXPECT_EQ(engine.kv_tiles_in_use(), 0u);
  EXPECT_EQ(engine.kv_bytes(), 0u);
  // The pool was sized for the worst case: no request was ever preempted.
  EXPECT_EQ(sum.preempted, 0u);

  // Lifetime accounting equals the sum of the per-step reports, field by
  // field — nothing runs outside a tick.
  const auto& life = engine.lifetime();
  EXPECT_EQ(life.active, sum.active);
  EXPECT_EQ(life.admitted, sum.admitted);
  EXPECT_EQ(life.prefill_chunks, sum.prefill_chunks);
  EXPECT_EQ(life.prefill_rows, sum.prefill_rows);
  EXPECT_EQ(life.decoded, sum.decoded);
  EXPECT_EQ(life.retired, sum.retired);
  EXPECT_EQ(life.preempted, sum.preempted);
  EXPECT_EQ(life.evicted, sum.evicted);
  EXPECT_EQ(life.shared_tiles, sum.shared_tiles);
  EXPECT_EQ(life.activations_clipped, sum.activations_clipped);
  EXPECT_EQ(life.attention.gemm1.checks, sum.attention.gemm1.checks);
  EXPECT_EQ(life.attention.gemm1.flagged, sum.attention.gemm1.flagged);
  EXPECT_EQ(life.attention.exp_check.checks, sum.attention.exp_check.checks);
  EXPECT_EQ(life.attention.gemm2.checks, sum.attention.gemm2.checks);
  EXPECT_EQ(life.attention.range_corrections,
            sum.attention.range_corrections);
  EXPECT_EQ(life.attention.faults_injected, sum.attention.faults_injected);
  EXPECT_EQ(life.linear.checks, sum.linear.checks);
  EXPECT_EQ(life.linear.flagged, sum.linear.flagged);

  // Totals are intrinsic to the traffic, not the schedule.  Prompts are
  // distinct random matrices, so prefix sharing never fires and every
  // prompt row is computed exactly once.
  std::size_t total_prompt = 0, total_decode = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    total_prompt += lens[i];
    total_decode += budgets[i];
  }
  EXPECT_EQ(sum.prefill_rows, total_prompt);
  EXPECT_EQ(sum.decoded, total_decode);
  EXPECT_EQ(sum.admitted, kRequests);
  EXPECT_EQ(sum.retired, kRequests);
  EXPECT_EQ(sum.active, total_prompt + total_decode);
  // Clean run stays (essentially) clean: decode ticks verify per token
  // (chunk = 1), where the relative threshold can trip on rounding noise.
  EXPECT_LE(sum.attention.total_detected(),
            sum.attention.gemm1.checks / 1000 + 2);
}

TEST(Engine, PreemptionLetsHighPriorityOvertakeAndVictimsReplayExactly) {
  const fx::Model model(serving_config(), 0xbeefcafe);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.scheduler.max_batch_size = 4;
  opt.scheduler.max_kv_tiles = 4;  // tight: 3 bulk contexts + 1 spare tile
  fs::DecodeEngine engine(model, opt);

  // Three low-priority bulk requests whose contexts grow past one tile
  // (40-row prompt + 30 generated = 70 tokens = 2 tiles each), then a
  // high-priority arrival that needs 2 tiles of its own.
  const std::size_t bulk_lens[] = {40, 40, 40};
  const std::size_t bulk_budget = 30;
  std::vector<fs::DecodeEngine::RequestId> bulk;
  std::vector<ft::MatrixF> prompts;
  for (std::size_t i = 0; i < 3; ++i) {
    prompts.push_back(random_prompt(bulk_lens[i], hidden, 600 + i));
    bulk.push_back(
        engine.submit(prompts[i], bulk_budget, fs::Priority::kLow));
  }
  engine.drain(3);  // all bulk admitted + prefilled, decoding under way
  ASSERT_EQ(engine.active(), 3u);

  prompts.push_back(random_prompt(100, hidden, 700));
  const auto vip =
      engine.submit(prompts[3], /*max_new_tokens=*/5, fs::Priority::kHigh);

  fs::DecodeEngine::StepStats stats;
  std::size_t vip_retired_at = 0, first_bulk_retired_at = 0;
  for (std::size_t tick2 = 1; tick2 <= 4000; ++tick2) {
    stats += engine.step();
    if (vip_retired_at == 0 &&
        engine.state(vip) == fs::RequestState::kRetired) {
      vip_retired_at = tick2;
    }
    if (first_bulk_retired_at == 0) {
      for (const auto id : bulk) {
        if (engine.state(id) == fs::RequestState::kRetired) {
          first_bulk_retired_at = tick2;
          break;
        }
      }
    }
    if (engine.queued() == 0 && engine.active() == 0) break;
  }

  // The tight pool forced preemption, the high-priority request overtook
  // the bulk traffic, and no high-priority request was ever a victim.
  EXPECT_GT(stats.preempted, 0u);
  EXPECT_GT(vip_retired_at, 0u);
  EXPECT_GT(first_bulk_retired_at, 0u);
  EXPECT_LT(vip_retired_at, first_bulk_retired_at)
      << "high priority must finish before any bulk request";
  EXPECT_EQ(engine.preemption_count(vip), 0u);
  std::size_t victim_preemptions = 0;
  for (const auto id : bulk) victim_preemptions += engine.preemption_count(id);
  EXPECT_EQ(victim_preemptions, stats.preempted);

  // Recompute-on-readmission is exact: every request — preempted or not —
  // lands on the same final hidden state as an uninterrupted solo run.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto id = i < 3 ? bulk[i] : vip;
    const std::size_t budget = i < 3 ? bulk_budget : 5;
    EXPECT_EQ(engine.state(id), fs::RequestState::kRetired) << i;
    EXPECT_EQ(engine.context_length(id), prompts[i].rows() + budget) << i;
    fs::DecodeEngine solo(model);
    const auto sid = solo.submit(prompts[i], budget);
    solo.run_until_idle(nullptr, 200);
    const auto hb = engine.hidden(id);
    const auto hs = solo.hidden(sid);
    ASSERT_EQ(hb.size(), hs.size());
    for (std::size_t c = 0; c < hb.size(); ++c) {
      EXPECT_EQ(hb[c], hs[c]) << "request " << i << " c " << c;
    }
  }
  EXPECT_EQ(engine.kv_tiles_in_use(), 0u);
}
