// OpenMP thread-count invariance: the batched decode kernel partitions
// *independent* (request, head) work items across threads — no shared
// accumulator ever crosses an item boundary — so its outputs and its
// merged / per-item FtReports must be bit-identical for any OpenMP team
// size.  This suite pins that down for OMP_NUM_THREADS in {1, 2, 8} at the
// kernel level and at the full serving-engine level; scripts/run_tier1.sh
// additionally re-runs it under an OMP_NUM_THREADS matrix from the outside.
#include <gtest/gtest.h>

#include <omp.h>

#include <random>
#include <vector>

#include "core/decode.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

// This suite *forces* multi-thread OpenMP teams via omp_set_num_threads,
// which defeats the TSan leg's OMP_NUM_THREADS=1 guard: libgomp is not
// TSan-instrumented, so its critical sections / barriers are invisible and
// every properly-synchronized OMP reduction reads as a race.  The property
// under test here is numeric (bit-invariance), already covered by the
// plain and OMP-matrix ctest legs; under TSan the suite skips itself so
// the sanitizer leg stays focused on the raw shard/router threads it can
// actually check.
#if defined(__SANITIZE_THREAD__)
#define FTT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FTT_TSAN_BUILD 1
#endif
#endif
#if defined(FTT_TSAN_BUILD)
#define FTT_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "OMP teams under TSan: libgomp sync is uninstrumented"
#else
#define FTT_SKIP_UNDER_TSAN() (void)0
#endif

namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

void fill_cache(fs::KvCache& cache, std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = cache.heads() * cache.dim();
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
  }
}

/// Restore the ambient thread count after each test so suites stay
/// independent of execution order.
class OmpGuard {
 public:
  OmpGuard() : saved_(omp_get_max_threads()) {}
  ~OmpGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

}  // namespace

TEST(OmpInvariance, DecodeBatchBitIdenticalAcrossThreadCounts) {
  FTT_SKIP_UNDER_TSAN();
  OmpGuard guard;
  const std::size_t lengths[] = {200, 65, 64, 1, 130};
  constexpr std::size_t kHeads = 4, kDim = 32;
  std::vector<fs::KvCache> caches;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 900 + i);
  }
  const std::size_t items_n = caches.size() * kHeads;
  std::vector<std::vector<Half>> queries(items_n, std::vector<Half>(kDim));
  for (std::size_t i = 0; i < items_n; ++i) {
    std::mt19937_64 rng(7100 + i);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (auto& x : queries[i]) x = Half(dist(rng));
  }

  std::vector<std::vector<float>> ref_out;
  std::vector<fa::FtReport> ref_item;
  fa::FtReport ref_total;

  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    omp_set_num_threads(kThreadCounts[t]);
    std::vector<std::vector<float>> out(items_n,
                                        std::vector<float>(kDim, 0.0f));
    std::vector<fc::DecodeWorkItem> items;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t h = 0; h < kHeads; ++h) {
        const std::size_t i = r * kHeads + h;
        items.push_back(fc::DecodeWorkItem{caches[r].slice(h),
                                           queries[i].data(),
                                           out[i].data()});
      }
    }
    std::vector<fa::FtReport> per_item(items_n);
    const fa::FtReport total =
        fc::efta_decode_batch(items, {}, nullptr, per_item);

    if (t == 0) {
      ref_out = out;
      ref_item = per_item;
      ref_total = total;
      continue;
    }
    for (std::size_t i = 0; i < items_n; ++i) {
      for (std::size_t c = 0; c < kDim; ++c) {
        EXPECT_EQ(out[i][c], ref_out[i][c])
            << kThreadCounts[t] << " threads, item " << i << " c " << c;
      }
      EXPECT_EQ(per_item[i].gemm1.checks, ref_item[i].gemm1.checks);
      EXPECT_EQ(per_item[i].gemm2.checks, ref_item[i].gemm2.checks);
      EXPECT_EQ(per_item[i].total_detected(), ref_item[i].total_detected());
    }
    EXPECT_EQ(total.gemm1.checks, ref_total.gemm1.checks);
    EXPECT_EQ(total.exp_check.checks, ref_total.exp_check.checks);
    EXPECT_EQ(total.gemm2.checks, ref_total.gemm2.checks);
    EXPECT_EQ(total.total_detected(), ref_total.total_detected());
    EXPECT_EQ(total.total_corrected(), ref_total.total_corrected());
  }
}

TEST(OmpInvariance, EngineRunBitIdenticalAcrossThreadCounts) {
  FTT_SKIP_UNDER_TSAN();
  OmpGuard guard;
  const fx::Model model(serving_config(), 0x0317);
  const std::size_t hidden = model.config().hidden;
  ft::MatrixF p0(90, hidden), p1(17, hidden);
  ft::fill_normal(p0, 61);
  ft::fill_normal(p1, 62);

  std::vector<std::vector<float>> ref;
  fs::StepStats ref_stats;

  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    omp_set_num_threads(kThreadCounts[t]);
    fs::EngineOptions opt;
    opt.spec_tokens = 2;
    fs::DecodeEngine engine(model, opt);
    const auto a = engine.submit(p0, 6);
    const auto b = engine.submit(p1, 8);
    const fs::StepStats stats = engine.run_until_idle(nullptr, 10000);
    std::vector<std::vector<float>> h;
    h.emplace_back(engine.hidden(a).begin(), engine.hidden(a).end());
    h.emplace_back(engine.hidden(b).begin(), engine.hidden(b).end());

    if (t == 0) {
      ref = h;
      ref_stats = stats;
      continue;
    }
    EXPECT_EQ(stats.decoded, ref_stats.decoded);
    EXPECT_EQ(stats.spec_accepted, ref_stats.spec_accepted);
    EXPECT_EQ(stats.attention.gemm1.checks,
              ref_stats.attention.gemm1.checks);
    EXPECT_EQ(stats.attention.total_detected(),
              ref_stats.attention.total_detected());
    for (std::size_t r = 0; r < h.size(); ++r) {
      ASSERT_EQ(h[r].size(), ref[r].size());
      for (std::size_t c = 0; c < h[r].size(); ++c) {
        EXPECT_EQ(h[r][c], ref[r][c])
            << kThreadCounts[t] << " threads, request " << r << " c " << c;
      }
    }
  }
}

TEST(OmpInvariance, ShardedEngineIndependentOfOmpTeamSize) {
  FTT_SKIP_UNDER_TSAN();
  // Shard workers are raw threads; the head-range kernel they call is
  // serial by design (no nested OpenMP team).  The ambient OpenMP setting
  // therefore must not leak into a sharded run's results.
  OmpGuard guard;
  const fx::Model model(serving_config(), 0x0318);
  const std::size_t hidden = model.config().hidden;
  ft::MatrixF prompt(50, hidden);
  ft::fill_normal(prompt, 63);

  std::vector<float> ref;
  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    omp_set_num_threads(kThreadCounts[t]);
    fs::EngineOptions opt;
    opt.shards = 2;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, 5);
    engine.run_until_idle(nullptr, 10000);
    std::vector<float> h(engine.hidden(id).begin(), engine.hidden(id).end());
    if (t == 0) {
      ref = h;
      continue;
    }
    ASSERT_EQ(h.size(), ref.size());
    for (std::size_t c = 0; c < h.size(); ++c) {
      EXPECT_EQ(h[c], ref[c]) << kThreadCounts[t] << " threads, c " << c;
    }
  }
}
