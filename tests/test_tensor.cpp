// Tensor containers: indexing, views, widen/narrow, comparisons.
#include <gtest/gtest.h>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ft = ftt::tensor;
using ftt::numeric::Half;

TEST(Matrix, RowMajorIndexing) {
  ft::MatrixF m(3, 4);
  float v = 0.0f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = v++;
  }
  EXPECT_EQ(m.data()[0], 0.0f);
  EXPECT_EQ(m.data()[5], m(1, 1));
  EXPECT_EQ(m.data()[11], m(2, 3));
}

TEST(Matrix, RowSpan) {
  ft::MatrixF m(2, 3, 7.0f);
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  row[2] = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, FillAndEquality) {
  ft::MatrixF a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b(1, 1) = 2.0f;
  EXPECT_FALSE(a == b);
}

TEST(BlockView, WindowsIntoBase) {
  ft::MatrixF m(8, 8, 0.0f);
  ft::BlockView<float> blk(m, 2, 4, 3, 2);
  blk(0, 0) = 5.0f;
  blk(2, 1) = 6.0f;
  EXPECT_EQ(m(2, 4), 5.0f);
  EXPECT_EQ(m(4, 5), 6.0f);
  EXPECT_EQ(blk.rows(), 3u);
  EXPECT_EQ(blk.cols(), 2u);
}

TEST(Tensor4D, SliceLayout) {
  ft::Tensor4F t(2, 3, 4, 5);
  t.at(1, 2, 3, 4) = 42.0f;
  auto s = t.slice(1, 2);
  EXPECT_EQ(s[3 * 5 + 4], 42.0f);
  EXPECT_EQ(t.size(), 2u * 3 * 4 * 5);
}

TEST(Tensor4D, SlicesAreDisjoint) {
  ft::Tensor4F t(2, 2, 2, 2, 0.0f);
  auto s00 = t.slice(0, 0);
  auto s11 = t.slice(1, 1);
  s00[0] = 1.0f;
  s11[0] = 2.0f;
  EXPECT_EQ(t.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1, 0, 0), 2.0f);
}

TEST(WidenNarrow, RoundTrip) {
  ft::MatrixH h(2, 3);
  for (std::size_t i = 0; i < h.size(); ++i) {
    h.data()[i] = Half(static_cast<float>(i) * 0.25f);
  }
  ft::MatrixF f(2, 3);
  ft::widen({h.data(), h.size()}, f);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(f.data()[i], static_cast<float>(i) * 0.25f);
  }
  ft::MatrixH h2(2, 3);
  ft::narrow(f, {h2.data(), h2.size()});
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h.data()[i].bits(), h2.data()[i].bits());
  }
}

TEST(WidenNarrow, SizeMismatchThrows) {
  ft::MatrixH h(2, 3);
  ft::MatrixF f(3, 3);
  EXPECT_THROW(ft::widen({h.data(), h.size()}, f), std::invalid_argument);
}

TEST(Diff, MaxAbsAndRel) {
  ft::MatrixF a(1, 3), b(1, 3);
  a(0, 0) = 1.0f;
  b(0, 0) = 1.5f;
  a(0, 1) = 10.0f;
  b(0, 1) = 10.0f;
  a(0, 2) = -2.0f;
  b(0, 2) = -1.0f;
  EXPECT_FLOAT_EQ(ft::max_abs_diff(a, b), 1.0f);
  EXPECT_NEAR(ft::max_rel_diff(a, b), 1.0f, 1e-5f);
}

TEST(Random, Deterministic) {
  ft::MatrixF a(4, 4), b(4, 4);
  ft::fill_normal(a, 123);
  ft::fill_normal(b, 123);
  EXPECT_EQ(a, b);
  ft::MatrixF c(4, 4);
  ft::fill_normal(c, 124);
  EXPECT_FALSE(a == c);
}

TEST(Random, MomentsRoughlyCorrect) {
  ft::MatrixF m(100, 100);
  ft::fill_normal(m, 7, 0.0f, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  const double mean = sum / m.size();
  const double var = sq / m.size() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}
