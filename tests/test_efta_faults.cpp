// EFTA under injected faults: every site of the paper's case analysis, in
// both per-step and unified verification modes, parameterized over bit
// positions and call offsets.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.hpp"
#include "core/efta.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;

namespace {

float max_diff(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d);
  }
  return m;
}

float max_rel(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d / (std::fabs(b.data()[i]) + 0.1f));
  }
  return m;
}

struct Env {
  ft::Tensor4H Q{1, 1, 128, 64}, K{1, 1, 128, 64}, V{1, 1, 128, 64};
  ft::Tensor4F ref{1, 1, 128, 64};
  Env() {
    ft::fill_normal(Q, 11);
    ft::fill_normal(K, 12);
    ft::fill_normal(V, 13);
    fa::standard_attention(Q, K, V, ref);
  }
  ft::Tensor4F run(const fc::EftaOptions& opt, ff::FaultInjector* inj,
                   fa::FtReport* out_rep = nullptr) const {
    ft::Tensor4F O(1, 1, 128, 64);
    const auto rep = fc::efta_attention(Q, K, V, O, opt, inj);
    if (out_rep) *out_rep = rep;
    return O;
  }
};

fc::EftaOptions mode(bool unified) {
  fc::EftaOptions o;
  o.unified_verification = unified;
  return o;
}

}  // namespace

class EftaFaultModes : public ::testing::TestWithParam<bool> {};

TEST_P(EftaFaultModes, Gemm1HighBitCorrected) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 2077, 30);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm1.corrected + rep.exp_check.corrected, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST_P(EftaFaultModes, ExpFaultRecomputed) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 911, 29);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.exp_check.flagged, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST_P(EftaFaultModes, ExpSignFlipRecovered) {
  // Negative exp output: impossible value, caught by the positivity guard.
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 911, 31);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_GE(rep.exp_check.flagged, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST_P(EftaFaultModes, Gemm2Corrected) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 3333, 30);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm2.corrected, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST_P(EftaFaultModes, RescaleCorrected) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kRescale, 4000, 30);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST_P(EftaFaultModes, ReduceSumRangeRestricted) {
  // Case 3: a big flip in the running rowsum pushes l outside
  // [sum exp(m_blk - m_glob), seq]; SNVR replaces it with the approximation.
  // The result is approximate, not exact — check it stays usable.
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kReduceSum, 77, 29);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.range_corrections, 1u);
  for (std::size_t i = 0; i < O.size(); ++i) {
    EXPECT_TRUE(std::isfinite(O.data()[i]));
  }
}

TEST_P(EftaFaultModes, ReduceMaxUpwardCancels) {
  // Case 1: an upward-flipped running max cancels exactly through the
  // rescale chain (the stabilizer need not be the true max).
  Env env;
  // Bit 23 flips low exponent bits: moderate perturbation of the max.
  auto inj = ff::FaultInjector::single(ff::Site::kReduceMax, 50, 23);
  fa::FtReport rep;
  const auto O = env.run(mode(GetParam()), &inj, &rep);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_LT(max_rel(O, env.ref), 0.05f);
}

TEST_P(EftaFaultModes, ChecksumPipelineFlipHarmless) {
  // A flip confined to the checksum pipeline must never corrupt the payload.
  Env env;
  for (std::uint64_t call : {10u, 600u, 1500u}) {
    auto inj = ff::FaultInjector::single(ff::Site::kChecksum, call, 28);
    fa::FtReport rep;
    const auto O = env.run(mode(GetParam()), &inj, &rep);
    EXPECT_LT(max_diff(O, env.ref), 1e-2f) << call;
  }
}

TEST_P(EftaFaultModes, LowBitFlipsStayNegligible) {
  // Low-mantissa flips may escape detection but by construction cannot move
  // the output materially.
  Env env;
  for (ff::Site site : {ff::Site::kGemm1, ff::Site::kExp, ff::Site::kGemm2}) {
    auto inj = ff::FaultInjector::single(site, 123, 2);
    const auto O = env.run(mode(GetParam()), &inj, nullptr);
    EXPECT_LT(max_rel(O, env.ref), 0.02f) << ff::site_name(site);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EftaFaultModes, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Unified" : "PerStep";
                         });

// --- bit-position sweep (property-style): high bits always recovered ---

class EftaBitSweep : public ::testing::TestWithParam<unsigned> {};

namespace {
// Exponent-field flips (>= bit 29) must be detected and repaired exactly;
// mantissa-field flips may legitimately sit below the detection threshold,
// but then their impact is bounded by construction.
float bit_tolerance(unsigned bit) { return bit >= 30 ? 0.05f : 0.30f; }
}  // namespace

TEST_P(EftaBitSweep, Gemm1FlipRecovered) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 999, GetParam());
  fc::EftaOptions opt = mode(true);
  const auto O = env.run(opt, &inj, nullptr);
  EXPECT_LT(max_rel(O, env.ref), bit_tolerance(GetParam()))
      << "bit " << GetParam();
}

TEST_P(EftaBitSweep, Gemm2FlipRecovered) {
  Env env;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 4242, GetParam());
  fc::EftaOptions opt = mode(true);
  const auto O = env.run(opt, &inj, nullptr);
  EXPECT_LT(max_rel(O, env.ref), bit_tolerance(GetParam()))
      << "bit " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bits, EftaBitSweep,
                         ::testing::Values(20u, 23u, 26u, 28u, 30u, 31u));

// --- DMR softmax mode under EXP faults ---

TEST(EftaDmr, ExpFaultCaughtByReplication) {
  Env env;
  fc::EftaOptions opt;
  opt.softmax = fc::SoftmaxProtect::kDMR;
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 500, 30);
  fa::FtReport rep;
  ft::Tensor4F O(1, 1, 128, 64);
  rep = fc::efta_attention(env.Q, env.K, env.V, O, opt, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.dmr_recomputes, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

// --- element (traditional) ABFT inside EFTA ---

TEST(EftaElement, Gemm1FlipCorrected) {
  Env env;
  fc::EftaOptions opt;
  opt.gemm = fc::GemmProtect::kElement;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 321, 30);
  fa::FtReport rep;
  ft::Tensor4F O(1, 1, 128, 64);
  rep = fc::efta_attention(env.Q, env.K, env.V, O, opt, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm1.corrected, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

TEST(EftaElement, Gemm2FlipCorrected) {
  Env env;
  fc::EftaOptions opt;
  opt.gemm = fc::GemmProtect::kElement;
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 2222, 30);
  fa::FtReport rep;
  ft::Tensor4F O(1, 1, 128, 64);
  rep = fc::efta_attention(env.Q, env.K, env.V, O, opt, &inj);
  EXPECT_GE(rep.gemm2.corrected, 1u);
  EXPECT_LT(max_diff(O, env.ref), 1e-2f);
}

// --- multi-error within one kernel call (beyond-SEU stress) ---

TEST(EftaMultiError, TwoFlipsDistinctResidues) {
  // Two MAC flips landing in different residue classes: both corrected by
  // the 8-wide tensor checksum (the paper's coverage advantage).
  Env env;
  auto inj =
      ff::FaultInjector::bernoulli(2.0 / (128.0 * 128.0), 99, {ff::Site::kGemm1});
  fa::FtReport rep;
  const auto O = env.run(mode(true), &inj, &rep);
  // Whatever landed, output must remain close to the reference.
  EXPECT_LT(max_rel(O, env.ref), 0.05f);
}

// --- causal (decoder) attention under faults ---

TEST(EftaCausalFaults, OffDiagonalGemm1Corrected) {
  ft::Tensor4H Q(1, 1, 128, 64), K(1, 1, 128, 64), V(1, 1, 128, 64);
  ft::fill_normal(Q, 41);
  ft::fill_normal(K, 42);
  ft::fill_normal(V, 43);
  fc::EftaOptions opt;
  opt.causal = true;
  opt.unified_verification = true;
  ft::Tensor4F ref(1, 1, 128, 64);
  fc::efta_attention(Q, K, V, ref, opt);
  // Calls 0..4095 are the diagonal block of row-block 0; 4096.. belong to
  // the second row block's off-diagonal pass.
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 5000, 30);
  ft::Tensor4F O(1, 1, 128, 64);
  const auto rep = fc::efta_attention(Q, K, V, O, opt, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_LT(max_diff(O, ref), 1e-2f);
}

TEST(EftaCausalFaults, DiagonalBlockVerifiedPreMask) {
  ft::Tensor4H Q(1, 1, 128, 64), K(1, 1, 128, 64), V(1, 1, 128, 64);
  ft::fill_normal(Q, 44);
  ft::fill_normal(K, 45);
  ft::fill_normal(V, 46);
  fc::EftaOptions opt;
  opt.causal = true;
  opt.unified_verification = true;
  ft::Tensor4F ref(1, 1, 128, 64);
  fc::efta_attention(Q, K, V, ref, opt);
  // Call 100 lands in the first (diagonal) block: the pre-mask linear
  // verification must repair it even though the EXP check is skipped there.
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 100, 30);
  ft::Tensor4F O(1, 1, 128, 64);
  const auto rep = fc::efta_attention(Q, K, V, O, opt, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm1.corrected, 1u);
  EXPECT_LT(max_diff(O, ref), 1e-2f);
}
