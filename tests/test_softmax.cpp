// Row softmax + DMR protection (Eqs. 10-11).
#include <gtest/gtest.h>

#include <cmath>

#include "softmax/softmax.hpp"
#include "tensor/random.hpp"

namespace fm = ftt::softmax;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

TEST(RowSoftmax, RowsSumToOne) {
  ft::MatrixF S(8, 32);
  ft::fill_normal(S, 1);
  fm::row_softmax(S);
  for (std::size_t r = 0; r < 8; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_GE(S(r, c), 0.0f);
      sum += S(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(RowSoftmax, StableUnderLargeValues) {
  // The stabilized form must not overflow for large scores.
  ft::MatrixF S(1, 4);
  S(0, 0) = 500.0f;
  S(0, 1) = 499.0f;
  S(0, 2) = -500.0f;
  S(0, 3) = 0.0f;
  fm::row_softmax(S);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_TRUE(std::isfinite(S(0, c)));
  EXPECT_GT(S(0, 0), S(0, 1));
  EXPECT_NEAR(S(0, 0) / S(0, 1), std::exp(1.0f), 1e-3f);
}

TEST(RowSoftmax, PreservesArgmax) {
  ft::MatrixF S(4, 16);
  ft::fill_normal(S, 2);
  ft::MatrixF orig = S;
  fm::row_softmax(S);
  for (std::size_t r = 0; r < 4; ++r) {
    std::size_t amax_in = 0, amax_out = 0;
    for (std::size_t c = 1; c < 16; ++c) {
      if (orig(r, c) > orig(r, amax_in)) amax_in = c;
      if (S(r, c) > S(r, amax_out)) amax_out = c;
    }
    EXPECT_EQ(amax_in, amax_out);
  }
}

TEST(RowSoftmax, MatchesDirectFormula) {
  ft::MatrixF S(1, 8);
  for (std::size_t c = 0; c < 8; ++c) S(0, c) = static_cast<float>(c) * 0.3f;
  ft::MatrixF in = S;
  fm::row_softmax(S);
  double denom = 0.0;
  for (std::size_t c = 0; c < 8; ++c) denom += std::exp(in(0, c));
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(S(0, c), std::exp(in(0, c)) / denom, 1e-5);
  }
}

TEST(DmrSoftmax, CleanRunConvergesImmediately) {
  ft::MatrixF S(8, 32);
  ft::fill_normal(S, 3);
  const auto res = fm::dmr_row_softmax(S, 1e-3f);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.recomputes, 1u);  // one replica evaluation, no retries
}

TEST(DmrSoftmax, DetectsAndRetriesOnFault) {
  ft::MatrixF S(8, 32);
  ft::fill_normal(S, 4);
  ft::MatrixF clean = S;
  fm::row_softmax(clean);

  // One big flip in the first evaluation's EXP: first comparison disagrees,
  // a third evaluation must agree with the second.
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 17, 30);
  ft::MatrixF S2(8, 32);
  ft::fill_normal(S2, 4);
  const auto res = fm::dmr_row_softmax(S2, 1e-3f, &inj);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.recomputes, 2u);
  EXPECT_LT(ft::max_abs_diff(S2, clean), 1e-4f);
}

TEST(DmrSoftmax, RowsumIdentityCatchesReduceSumFault) {
  // A corrupted reduce-sum breaks rowsum(P) == 1 even if both replicas agree
  // on the exp values; Eq. (11) forces a retry.
  ft::MatrixF S(4, 16);
  ft::fill_normal(S, 5);
  ft::MatrixF clean = S;
  fm::row_softmax(clean);
  auto inj = ff::FaultInjector::single(ff::Site::kReduceSum, 2, 29);
  ft::MatrixF S2 = S;
  const auto res = fm::dmr_row_softmax(S2, 1e-3f, &inj);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(ft::max_abs_diff(S2, clean), 1e-4f);
}

TEST(DmrSoftmax, GivesUpAfterMaxRounds) {
  ft::MatrixF S(2, 8);
  ft::fill_normal(S, 6);
  // Flip something on every evaluation: never converges within 3 rounds.
  auto inj = ff::FaultInjector::bernoulli(0.2, 11, {ff::Site::kExp});
  (void)fm::dmr_row_softmax(S, 1e-6f, &inj, 3);
  // Either it got lucky with two agreeing evaluations or it gave up; both
  // must leave finite output.
  for (std::size_t i = 0; i < S.size(); ++i) {
    EXPECT_TRUE(std::isfinite(S.data()[i]));
  }
}

TEST(SoftmaxCosts, DmrOverheadAtLeastOneReplica) {
  const auto base = fm::softmax_costs(64, 64).total();
  const auto dmr = fm::dmr_overhead_costs(64, 64).total();
  EXPECT_GE(dmr.sfu_ops, base.sfu_ops);
  EXPECT_GT(dmr.fp32_flops, base.fp32_flops);
}
