// Decoupled (operation-level) FT attention: correctness, fault recovery per
// kernel, and cost-model facts (3 launches, quadratic traffic).
#include <gtest/gtest.h>

#include <cmath>

#include "attention/decoupled_ft.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

namespace {

float max_diff(const ft::Tensor4F& a, const ft::Tensor4F& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = std::fabs(a.data()[i] - b.data()[i]);
    if (std::isnan(d)) return std::numeric_limits<float>::infinity();
    m = std::max(m, d);
  }
  return m;
}

struct Made {
  ft::Tensor4H Q, K, V;
};
Made make(std::size_t batch, std::size_t heads, std::size_t seq,
          std::size_t dim, std::uint64_t seed) {
  Made m{ft::Tensor4H(batch, heads, seq, dim),
         ft::Tensor4H(batch, heads, seq, dim),
         ft::Tensor4H(batch, heads, seq, dim)};
  ft::fill_normal(m.Q, seed);
  ft::fill_normal(m.K, seed + 1);
  ft::fill_normal(m.V, seed + 2);
  return m;
}

}  // namespace

TEST(DecoupledFt, CleanMatchesStandard) {
  auto [Q, K, V] = make(1, 2, 128, 64, 1);
  ft::Tensor4F Os(1, 2, 128, 64), Od(1, 2, 128, 64);
  fa::standard_attention(Q, K, V, Os);
  const auto rep = fa::decoupled_ft_attention(Q, K, V, Od);
  EXPECT_LT(max_diff(Os, Od), 2e-3f);
  EXPECT_EQ(rep.gemm1.flagged, 0u);
  EXPECT_EQ(rep.gemm2.flagged, 0u);
  // DMR's first replica evaluation always runs.
  EXPECT_GE(rep.dmr_recomputes, 1u);
}

TEST(DecoupledFt, RecoversFromGemm1Fault) {
  auto [Q, K, V] = make(1, 1, 64, 64, 2);
  ft::Tensor4F ref(1, 1, 64, 64), out(1, 1, 64, 64);
  fa::decoupled_ft_attention(Q, K, V, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 1234, 30);
  const auto rep = fa::decoupled_ft_attention(Q, K, V, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_EQ(rep.gemm1.corrected, 1u);
  EXPECT_LT(max_diff(ref, out), 2e-2f);
}

TEST(DecoupledFt, RecoversFromExpFaultViaDmr) {
  auto [Q, K, V] = make(1, 1, 64, 64, 3);
  ft::Tensor4F ref(1, 1, 64, 64), out(1, 1, 64, 64);
  fa::decoupled_ft_attention(Q, K, V, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 500, 30);
  const auto rep = fa::decoupled_ft_attention(Q, K, V, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.dmr_recomputes, 2u);
  EXPECT_LT(max_diff(ref, out), 2e-2f);
}

TEST(DecoupledFt, RecoversFromGemm2Fault) {
  auto [Q, K, V] = make(1, 1, 64, 64, 4);
  ft::Tensor4F ref(1, 1, 64, 64), out(1, 1, 64, 64);
  fa::decoupled_ft_attention(Q, K, V, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 777, 30);
  const auto rep = fa::decoupled_ft_attention(Q, K, V, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_EQ(rep.gemm2.corrected, 1u);
  EXPECT_LT(max_diff(ref, out), 2e-2f);
}

TEST(DecoupledFt, MultiSliceWithInjection) {
  // Injection forces the serial path; results must still match the parallel
  // clean run where no flip landed.
  auto [Q, K, V] = make(2, 2, 64, 64, 5);
  ft::Tensor4F ref(2, 2, 64, 64), out(2, 2, 64, 64);
  fa::decoupled_ft_attention(Q, K, V, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 64 * 64 + 5, 30);
  fa::decoupled_ft_attention(Q, K, V, out, {}, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_LT(max_diff(ref, out), 2e-2f);
}

TEST(DecoupledFtCosts, ThreeLaunchesAndQuadraticTraffic) {
  const auto c = fa::decoupled_ft_costs(fa::paper_shape(1024, 16, 64));
  EXPECT_EQ(c[ftt::sim::Phase::kMemory].launches, 3);
  // Traffic dominated by fp32 S and P round trips:
  const double expected =
      16.0 * 16384.0 / 1024.0 * 2.0 * 1024.0 * 1024.0 * 4.0 * 2.0;
  EXPECT_GT(c[ftt::sim::Phase::kMemory].hbm_bytes, expected * 0.9);
}

TEST(DecoupledFtCosts, DmrAndShuffleOverheadsPresent) {
  const auto c = fa::decoupled_ft_costs(fa::paper_shape(512, 16, 64));
  EXPECT_GT(c[ftt::sim::Phase::kDmr].sfu_ops, 0.0);
  EXPECT_GT(c[ftt::sim::Phase::kChecksumGen].shuffles, 0.0);
}
