// Speculative multi-token decode: k-token query blocks through the verified
// kernel, the pluggable drafter, engine-level accept/reject with KV
// rollback, and the hard guarantee behind all of it — with speculation
// enabled, every retired request's committed token stream and hidden states
// are bit-identical to the q_len = 1 serial run, under clean ticks, under
// identical injected faults, and across preemption.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <unordered_map>
#include <vector>

#include "core/decode.hpp"
#include "fault/fault.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/proposer.hpp"
#include "serve/tile_pool.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Read-out head shaped for a repetitive suffix: final-LN gamma = 0 and a
/// nonzero beta make every generated input row exactly the beta row, bit
/// for bit, while every layer underneath still computes in full.  The
/// prompt-lookup drafter then reaches ~100% acceptance as soon as the
/// constant suffix is two rows long — the workload speculative decode is
/// built for, in its sharpest form.
fx::Model constant_stream_model(std::uint64_t seed) {
  fx::Model model(serving_config(), seed);
  auto& gamma = model.final_ln().gamma();
  auto& beta = model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  return model;
}

/// Deliberately useless drafter: always proposes max_rows copies of the
/// last committed row.  On a non-repetitive stream every draft is rejected
/// every tick — the rollback paths (open-tile truncation, tile-boundary
/// crossings, whole-draft rejection) fire constantly while the committed
/// stream must stay byte-for-byte serial.
class RepeatLastProposer final : public fs::TokenProposer {
 public:
  void reset(std::size_t id) override { last_.erase(id); }
  void observe(std::size_t id, std::span<const float> row) override {
    last_[id].assign(row.begin(), row.end());
  }
  std::size_t propose(std::size_t id, std::size_t max_rows,
                      std::size_t hidden, float* out) override {
    const auto it = last_.find(id);
    if (it == last_.end() || it->second.size() != hidden) return 0;
    for (std::size_t r = 0; r < max_rows; ++r) {
      std::memcpy(out + r * hidden, it->second.data(),
                  hidden * sizeof(float));
    }
    return max_rows;
  }

 private:
  std::unordered_map<std::size_t, std::vector<float>> last_;
};

void expect_bitwise_equal(std::span<const float> a, std::span<const float> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at " << i;
  }
}

void expect_same_stream(fs::DecodeEngine& a, fs::DecodeEngine::RequestId ida,
                        fs::DecodeEngine& b, fs::DecodeEngine::RequestId idb) {
  const ft::MatrixF fa_ = a.fed_inputs(ida), fb = b.fed_inputs(idb);
  ASSERT_EQ(fa_.rows(), fb.rows()) << "committed stream lengths differ";
  ASSERT_EQ(fa_.cols(), fb.cols());
  for (std::size_t r = 0; r < fa_.rows(); ++r) {
    for (std::size_t c = 0; c < fa_.cols(); ++c) {
      ASSERT_EQ(fa_(r, c), fb(r, c)) << "stream row " << r << " col " << c;
    }
  }
  expect_bitwise_equal(a.hidden(ida), b.hidden(idb), "final hidden");
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel + cache rollback primitives.
// ---------------------------------------------------------------------------

TEST(KvCacheTruncate, RollbackLeavesNoTrace) {
  // Speculate 5 rows over a 62-token cache (crossing the 64-row tile
  // boundary), roll them back, then append a different continuation: the
  // cache must be bit-identical to one that never speculated — zeroed
  // padding rows, dropped memo for the re-opened tile, identical decode.
  constexpr std::size_t kDim = 64, kBase = 62, kSpec = 5;
  std::mt19937_64 rng(0x5bec);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const auto rand_rows = [&](std::size_t rows) {
    std::vector<Half> v(rows * kDim);
    for (auto& x : v) x = Half(dist(rng));
    return v;
  };
  const auto base_k = rand_rows(kBase), base_v = rand_rows(kBase);
  const auto spec_k = rand_rows(kSpec), spec_v = rand_rows(kSpec);
  const auto real_k = rand_rows(kSpec), real_v = rand_rows(kSpec);

  fs::KvCache speculated(1, kDim), clean(1, kDim);
  speculated.append_chunk(base_k, base_v, kBase);
  clean.append_chunk(base_k, base_v, kBase);

  speculated.append_chunk(spec_k, spec_v, kSpec);  // 67 rows: tile 0 sealed
  ASSERT_EQ(speculated.length(), kBase + kSpec);
  ASSERT_NE(speculated.slice(0).k_c1[0], nullptr);
  speculated.truncate(kBase);  // reject everything
  EXPECT_EQ(speculated.length(), kBase);
  // Tile 0 re-opened: its memo must be gone (it no longer describes the
  // tile) and the rolled-back rows must read as zero padding again.
  EXPECT_EQ(speculated.slice(0).k_c1[0], nullptr);
  const fc::KvSlice sl = speculated.slice(0);
  for (std::size_t r = kBase; r < fs::KvCache::kTileRows; ++r) {
    for (std::size_t c = 0; c < kDim; ++c) {
      ASSERT_EQ(sl.k_tiles[0][r * kDim + c].bits(), 0u) << r;
      ASSERT_EQ(sl.v_tiles[0][r * kDim + c].bits(), 0u) << r;
    }
  }

  speculated.append_chunk(real_k, real_v, kSpec);
  clean.append_chunk(real_k, real_v, kSpec);
  ASSERT_EQ(speculated.length(), clean.length());
  EXPECT_NE(speculated.slice(0).k_c1[0], nullptr);  // re-sealed on refill

  std::vector<Half> q(kDim);
  for (auto& x : q) x = Half(dist(rng));
  std::vector<float> out_spec(kDim), out_clean(kDim);
  fc::efta_decode_step(speculated.slice(0), q, out_spec);
  fc::efta_decode_step(clean.slice(0), q, out_clean);
  expect_bitwise_equal(out_spec, out_clean, "decode after rollback");
}

TEST(PagedKvTruncate, DeferredSealCommitAndRollback) {
  constexpr std::size_t kLayers = 2, kHeads = 1, kDim = 64;
  fs::TilePool pool(
      fs::TilePoolOptions{kLayers, kHeads, kDim, /*capacity=*/8, 8});
  fs::PagedKvCache cache(pool);

  std::mt19937_64 rng(0x9a6ed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const auto rows_of = [&](std::size_t rows) {
    std::vector<Half> v(rows * kHeads * kDim);
    for (auto& x : v) x = Half(dist(rng));
    return v;
  };

  // 60 committed rows, then a 7-row speculative block crossing the tile
  // boundary with sealing deferred.
  const auto base_k = rows_of(60), base_v = rows_of(60);
  const auto spec_k = rows_of(7), spec_v = rows_of(7);
  ASSERT_TRUE(cache.ensure_capacity(67));
  for (std::size_t l = 0; l < kLayers; ++l) {
    cache.append_chunk(l, base_k, base_v, 60);
  }
  for (std::size_t l = 0; l < kLayers; ++l) {
    cache.append_chunk(l, spec_k, spec_v, 7, /*defer_seal=*/true);
  }
  ASSERT_EQ(cache.layer_length(0), 67u);
  ASSERT_EQ(cache.block_table().size(), 2u);
  // Tile 0 filled mid-speculation: not sealed, no memo exposed.
  EXPECT_FALSE(pool.sealed(cache.block_table()[0]));
  EXPECT_EQ(cache.slice(0, 0).k_c1[0], nullptr);
  EXPECT_TRUE(cache.take_newly_sealed().empty());

  // Commit 5 of the 7 rows (accept 4 drafts): context 65, tile 0 now fully
  // committed — sealed at commit, memo exposed, reported for publication.
  const std::size_t in_use_before = pool.in_use();
  cache.truncate(65);
  EXPECT_EQ(cache.layer_length(0), 65u);
  EXPECT_EQ(cache.layer_length(1), 65u);
  EXPECT_TRUE(pool.sealed(cache.block_table()[0]));
  EXPECT_NE(cache.slice(0, 0).k_c1[0], nullptr);
  EXPECT_NE(cache.slice(1, 0).v_c2[0], nullptr);
  const auto sealed = cache.take_newly_sealed();
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0], 0u);
  EXPECT_EQ(pool.in_use(), in_use_before);  // tile 1 still holds row 64
  // Rolled-back rows of the kept open tile read as zero padding.
  const fc::KvSlice sl = cache.slice(0, 0);
  for (std::size_t r = 1; r < fs::TilePool::kTileRows; ++r) {
    for (std::size_t c = 0; c < kDim; ++c) {
      ASSERT_EQ(sl.k_tiles[1][r * kDim + c].bits(), 0u) << r;
    }
  }

  // Reject an entire follow-up draft that had opened a fresh tile: the
  // empty tail tile goes back to the pool.
  const auto spec2_k = rows_of(64), spec2_v = rows_of(64);
  ASSERT_TRUE(cache.ensure_capacity(65 + 64));
  ASSERT_EQ(cache.block_table().size(), 3u);
  for (std::size_t l = 0; l < kLayers; ++l) {
    cache.append_chunk(l, spec2_k, spec2_v, 64, /*defer_seal=*/true);
  }
  cache.truncate(65);  // reject all 64 speculative rows
  EXPECT_EQ(cache.block_table().size(), 2u);
  EXPECT_EQ(pool.in_use(), in_use_before);

  // Rolling back into the sealed region is a logic error, not a rollback.
  EXPECT_THROW(cache.truncate(63), std::logic_error);
  cache.release_all();
  EXPECT_EQ(pool.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Prompt-lookup drafter.
// ---------------------------------------------------------------------------

TEST(PromptLookup, ProposesContinuationOfRepeatedSuffix) {
  fs::PromptLookupProposer prop;
  constexpr std::size_t kH = 4;
  const auto row = [&](float v) { return std::vector<float>{v, v, v, v}; };
  // History: a b c a b — the trailing "b" matches at position 1, whose
  // continuation (c a b) fills 3 of the 4 requested rows.
  for (const float v : {1.f, 2.f, 3.f, 1.f, 2.f}) prop.observe(7, row(v));
  std::vector<float> out(4 * kH, 0.0f);
  ASSERT_EQ(prop.propose(7, 4, kH, out.data()), 3u);
  EXPECT_EQ(out[0], 3.f);
  EXPECT_EQ(out[kH], 1.f);
  EXPECT_EQ(out[2 * kH], 2.f);

  // A constant suffix unrolls to the full draft width: the backward scan
  // walks to an occurrence old enough to supply max_rows continuations.
  fs::PromptLookupProposer cprop;
  for (int i = 0; i < 6; ++i) cprop.observe(1, row(5.f));
  ASSERT_EQ(cprop.propose(1, 4, kH, out.data()), 4u);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(out[r * kH], 5.f) << r;

  // No earlier occurrence -> no proposal; unknown request -> no proposal.
  fs::PromptLookupProposer fresh;
  for (const float v : {1.f, 2.f, 3.f}) fresh.observe(2, row(v));
  EXPECT_EQ(fresh.propose(2, 4, kH, out.data()), 0u);
  EXPECT_EQ(fresh.propose(99, 4, kH, out.data()), 0u);

  // reset() forgets the history.
  cprop.reset(1);
  EXPECT_EQ(cprop.propose(1, 4, kH, out.data()), 0u);
}

TEST(PromptLookup, MinMatchAndHistoryWindow) {
  constexpr std::size_t kH = 2;
  const auto row = [&](float a, float b) { return std::vector<float>{a, b}; };

  // min_match = 2: a single-row coincidence is not enough evidence.
  fs::PromptLookupProposer strict(fs::PromptLookupOptions{2, 0});
  // History: (1,1) (2,2) (9,9) (1,1) (2,2) — the 2-gram (1,1)(2,2) repeats.
  strict.observe(3, row(1, 1));
  strict.observe(3, row(2, 2));
  strict.observe(3, row(9, 9));
  strict.observe(3, row(1, 1));
  strict.observe(3, row(2, 2));
  std::vector<float> out(4 * kH, 0.0f);
  ASSERT_EQ(strict.propose(3, 4, kH, out.data()), 3u);
  EXPECT_EQ(out[0], 9.f);  // the row after the matched 2-gram

  // But a 1-gram-only repeat must not fire under min_match = 2.
  fs::PromptLookupProposer strict2(fs::PromptLookupOptions{2, 0});
  strict2.observe(4, row(1, 1));
  strict2.observe(4, row(2, 2));
  strict2.observe(4, row(1, 1));  // "1" repeats, "2 1" does not
  EXPECT_EQ(strict2.propose(4, 4, kH, out.data()), 0u);

  // max_history bounds memory: rows age out and stop matching.
  fs::PromptLookupProposer windowed(fs::PromptLookupOptions{1, 3});
  windowed.observe(5, row(7, 7));
  windowed.observe(5, row(8, 8));
  windowed.observe(5, row(1, 1));
  windowed.observe(5, row(2, 2));
  windowed.observe(5, row(7, 7));  // the old (7,7) has aged out
  EXPECT_EQ(windowed.propose(5, 4, kH, out.data()), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level speculation.
// ---------------------------------------------------------------------------

TEST(Spec, RepetitiveStreamCommitsMultiTokenTicksBitIdentically) {
  const fx::Model model = constant_stream_model(0xabc1);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(21, hidden, 0xfeed1);
  constexpr std::size_t kBudget = 24;

  auto run = [&](std::size_t spec_tokens, fs::DecodeEngine::StepStats& sum,
                 std::size_t& ticks) {
    fs::EngineOptions opt;
    opt.spec_tokens = spec_tokens;
    opt.record_inputs = true;
    auto engine = std::make_unique<fs::DecodeEngine>(model, opt);
    const auto id = engine->submit(prompt, kBudget);
    ticks = 0;
    while (engine->queued() != 0 || engine->active() != 0) {
      sum += engine->step();
      if (++ticks >= 500) break;
    }
    EXPECT_LT(ticks, 500u);
    EXPECT_EQ(engine->state(id), fs::RequestState::kRetired);
    EXPECT_EQ(engine->context_length(id), prompt.rows() + kBudget);
    return std::make_pair(std::move(engine), id);
  };

  fs::DecodeEngine::StepStats spec_sum, serial_sum;
  std::size_t spec_ticks = 0, serial_ticks = 0;
  auto [spec, sid] = run(4, spec_sum, spec_ticks);
  auto [serial, lid] = run(0, serial_sum, serial_ticks);

  // The committed stream and hidden states are the serial ones, bit for
  // bit — speculation changed the tick count, not the results.
  expect_same_stream(*spec, sid, *serial, lid);
  EXPECT_EQ(spec_sum.decoded, serial_sum.decoded);
  EXPECT_EQ(spec_sum.decoded, kBudget);

  // And it genuinely speculated: multi-token commits shrank the tick count
  // by at least 2x on this near-100%-acceptance workload.
  EXPECT_GT(spec_sum.spec_accepted, kBudget / 2);
  EXPECT_EQ(spec_sum.spec_proposed,
            spec_sum.spec_accepted + spec_sum.spec_rejected);
  EXPECT_LT(spec_ticks * 2, serial_ticks);
  EXPECT_EQ(serial_sum.spec_proposed, 0u);
}

TEST(Spec, WrongDrafterRejectsEverythingAndStaysBitIdentical) {
  // A hostile drafter proposes garbage every tick over a non-repetitive
  // stream: every draft is scored and rejected, open-tile truncation runs
  // at every context length — including 64-row tile boundaries — and the
  // committed stream must remain byte-for-byte the serial one.
  const fx::Model model(serving_config(), 0x7e57);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(61, hidden, 0xfeed2);
  constexpr std::size_t kBudget = 12;  // crosses the 64-row boundary early

  fs::EngineOptions opt;
  opt.spec_tokens = 4;
  opt.record_inputs = true;
  opt.proposer = std::make_shared<RepeatLastProposer>();
  // Rejection rollback across a tile-seal boundary is only lossless for
  // fp16 tiles (re-opening a sealed kI8 tile restores dequantized, not
  // original, rows), so the byte-for-byte spec-vs-serial claim is an fp16
  // property — pin it against the FTT_KV_QUANT default flip.
  opt.kv_quant = false;
  fs::DecodeEngine spec(model, opt);
  const auto sid = spec.submit(prompt, kBudget);
  fs::DecodeEngine::StepStats sum;
  std::size_t ticks = 0;
  while (spec.queued() != 0 || spec.active() != 0) {
    sum += spec.step();
    ASSERT_LT(++ticks, 500u);
    // Rollback must leave exactly the committed context behind on every
    // tick: block-table tiles match ceil(tokens/64), nothing leaks.
    if (spec.is_active(sid)) {
      const std::size_t tokens = spec.context_length(sid);
      EXPECT_EQ(spec.kv_block_table(sid).size(), (tokens + 63) / 64);
    }
  }
  EXPECT_EQ(spec.state(sid), fs::RequestState::kRetired);
  EXPECT_EQ(spec.context_length(sid), prompt.rows() + kBudget);
  EXPECT_EQ(spec.kv_tiles_in_use(), 0u);

  // Whole drafts rejected, every tick that drafted; nothing ever accepted.
  EXPECT_GT(sum.spec_proposed, 0u);
  EXPECT_EQ(sum.spec_accepted, 0u);
  EXPECT_EQ(sum.spec_rejected, sum.spec_proposed);
  EXPECT_EQ(sum.decoded, kBudget);  // progress is exactly serial-rate

  fs::EngineOptions sopt;
  sopt.record_inputs = true;
  sopt.kv_quant = false;  // match the spec engine's pinned format
  fs::DecodeEngine serial(model, sopt);
  const auto lid = serial.submit(prompt, kBudget);
  serial.run_until_idle(nullptr, 500);
  expect_same_stream(spec, sid, serial, lid);
}

TEST(Spec, CommitAcrossTileBoundarySealsAndPublishes) {
  // Multi-token commits that cross a 64-row boundary seal the filled tile
  // at commit time (deferred sealing): the memoized encodings appear, and
  // later decode ticks consume them — bit-identically to the serial run.
  const fx::Model model = constant_stream_model(0xabc2);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(58, hidden, 0xfeed3);

  fs::EngineOptions opt;
  opt.spec_tokens = 4;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(prompt, 20);
  bool saw_sealed_generated_tile = false;
  std::size_t ticks = 0;
  while (engine.queued() != 0 || engine.active() != 0) {
    engine.step();
    ASSERT_LT(++ticks, 500u);
    if (engine.is_active(id) && engine.context_length(id) >= 64) {
      const auto table = engine.kv_block_table(id);
      ASSERT_FALSE(table.empty());
      if (engine.pool().sealed(table[0])) saw_sealed_generated_tile = true;
    }
  }
  EXPECT_TRUE(saw_sealed_generated_tile)
      << "the boundary-crossing commit never sealed tile 0";
  EXPECT_EQ(engine.context_length(id), 78u);
}

TEST(Spec, PreemptedMidSpeculationReplaysBitIdentically) {
  // A tight pool forces preemption while speculation is in flight.  Only
  // committed rows were ever observed or cached, so the readmitted request
  // replays its exact trajectory from the prompt — same final state as an
  // unpreempted solo run, bit for bit.
  const fx::Model model = constant_stream_model(0xabc3);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.spec_tokens = 4;
  opt.scheduler.max_batch_size = 4;
  opt.scheduler.max_kv_tiles = 4;  // 3 bulk contexts + 1 spare
  opt.share_prefix = false;        // distinct prompts; keep the pool honest
  fs::DecodeEngine engine(model, opt);

  std::vector<ft::MatrixF> prompts;
  std::vector<fs::DecodeEngine::RequestId> bulk;
  for (std::size_t i = 0; i < 3; ++i) {
    prompts.push_back(random_prompt(40, hidden, 800 + i));
    bulk.push_back(engine.submit(prompts[i], 30, fs::Priority::kLow));
  }
  engine.drain(3);
  ASSERT_EQ(engine.active(), 3u);
  prompts.push_back(random_prompt(100, hidden, 900));
  const auto vip = engine.submit(prompts[3], 5, fs::Priority::kHigh);

  fs::DecodeEngine::StepStats stats;
  std::size_t ticks = 0;
  while (engine.queued() != 0 || engine.active() != 0) {
    stats += engine.step();
    ASSERT_LT(++ticks, 4000u);
  }
  (void)vip;
  EXPECT_GT(stats.preempted, 0u) << "pool was sized to force preemption";
  EXPECT_GT(stats.spec_accepted, 0u) << "speculation never engaged";

  for (std::size_t i = 0; i < 4; ++i) {
    const auto id = i < 3 ? bulk[i] : vip;
    const std::size_t budget = i < 3 ? 30 : 5;
    EXPECT_EQ(engine.state(id), fs::RequestState::kRetired) << i;
    EXPECT_EQ(engine.context_length(id), prompts[i].rows() + budget) << i;
    fs::DecodeEngine solo(model);  // serial, unshared, unpreempted
    const auto sid = solo.submit(prompts[i], budget);
    solo.run_until_idle(nullptr, 400);
    expect_bitwise_equal(engine.hidden(id), solo.hidden(sid), "replay");
  }
  EXPECT_EQ(engine.kv_tiles_in_use(), 0u);
}

TEST(Spec, SameFaultsSameStream) {
  // "Bit-identical under the same faults": thread an identical single-flip
  // injector through the first tick (the prefill, where the speculative
  // and serial engines execute the same call sequence on the same data) of
  // both runs.  The corrected-but-perturbed prompt KV then feeds every
  // later tick of both runs, speculation engages on one of them, and the
  // committed streams must still match bit for bit.
  const fx::Model model = constant_stream_model(0xabc4);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(30, hidden, 0xfeed4);
  constexpr std::size_t kBudget = 16;

  auto run = [&](std::size_t spec_tokens) {
    fs::EngineOptions opt;
    opt.spec_tokens = spec_tokens;
    opt.record_inputs = true;
    auto engine = std::make_unique<fs::DecodeEngine>(model, opt);
    const auto id = engine->submit(prompt, kBudget);
    auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 7, 30);
    const auto faulty = engine->step(&inj);  // tick 1: the whole prefill
    EXPECT_EQ(faulty.attention.faults_injected, 1u);
    EXPECT_GE(faulty.attention.total_detected(), 1u);
    engine->run_until_idle(nullptr, 500);
    EXPECT_EQ(engine->state(id), fs::RequestState::kRetired);
    return std::make_pair(std::move(engine), id);
  };

  auto [spec, sid] = run(4);
  auto [serial, lid] = run(0);
  EXPECT_GT(spec->lifetime().spec_accepted, 0u);
  expect_same_stream(*spec, sid, *serial, lid);
}

TEST(Spec, FaultMidSpeculationIsDetectedAndBounded) {
  // A flip landing inside a speculative block tick is detected and
  // corrected like any other decode fault; acceptance can only shrink
  // (a perturbed output cannot bit-match a clean draft), the engine keeps
  // running, budgets still land exactly, and the result stays within the
  // usual correction tolerance of a clean run.
  const fx::Model model = constant_stream_model(0xabc5);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(20, hidden, 0xfeed5);
  constexpr std::size_t kBudget = 14;

  fs::EngineOptions opt;
  opt.spec_tokens = 4;
  fs::DecodeEngine faulty(model, opt);
  const auto fid = faulty.submit(prompt, kBudget);
  faulty.drain(4);  // prefill + a few speculative ticks
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 3, 28);
  const auto st = faulty.step(&inj);
  EXPECT_EQ(st.attention.faults_injected, 1u);
  EXPECT_GE(st.attention.total_detected(), 1u);
  faulty.run_until_idle(nullptr, 500);
  EXPECT_EQ(faulty.state(fid), fs::RequestState::kRetired);
  EXPECT_EQ(faulty.context_length(fid), prompt.rows() + kBudget);

  fs::DecodeEngine clean(model, opt);
  const auto cid = clean.submit(prompt, kBudget);
  clean.run_until_idle(nullptr, 500);
  const auto hf = faulty.hidden(fid);
  const auto hc = clean.hidden(cid);
  ASSERT_EQ(hf.size(), hc.size());
  for (std::size_t c = 0; c < hf.size(); ++c) {
    EXPECT_NEAR(hf[c], hc[c], 1e-2f) << c;
  }
}

TEST(Spec, RandomizedStressAgainstSerialWithAccounting) {
  // Mixed fleet — repetitive and non-repetitive prompts, ragged lengths,
  // staggered budgets — through one speculative engine; every retired
  // stream bit-matches a serial (spec-off) engine run of the same traffic,
  // and the lifetime stats balance field by field.
  const fx::Model model = constant_stream_model(0xaced5);
  const std::size_t hidden = model.config().hidden;
  std::mt19937_64 rng(20260726);
  std::uniform_int_distribution<std::size_t> len_dist(1, 90);
  std::uniform_int_distribution<std::size_t> budget_dist(1, 20);
  constexpr std::size_t kRequests = 7;

  std::vector<ft::MatrixF> prompts;
  std::vector<std::size_t> budgets;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.push_back(random_prompt(len_dist(rng), hidden, 7100 + i));
    budgets.push_back(budget_dist(rng));
  }

  auto run = [&](std::size_t spec_tokens, fs::DecodeEngine::StepStats& sum) {
    fs::EngineOptions opt;
    opt.spec_tokens = spec_tokens;
    opt.record_inputs = true;
    opt.scheduler.max_batch_size = 4;
    auto engine = std::make_unique<fs::DecodeEngine>(model, opt);
    std::vector<fs::DecodeEngine::RequestId> ids;
    for (std::size_t i = 0; i < kRequests; ++i) {
      ids.push_back(engine->submit(prompts[i], budgets[i]));
    }
    std::size_t ticks = 0;
    while (engine->queued() != 0 || engine->active() != 0) {
      sum += engine->step();
      if (++ticks >= 2000) break;
    }
    EXPECT_LT(ticks, 2000u);
    return std::make_pair(std::move(engine), ids);
  };

  fs::DecodeEngine::StepStats spec_sum, serial_sum;
  auto [spec, sids] = run(3, spec_sum);
  auto [serial, lids] = run(0, serial_sum);
  for (std::size_t i = 0; i < kRequests; ++i) {
    expect_same_stream(*spec, sids[i], *serial, lids[i]);
  }

  // Traffic totals are schedule- and speculation-invariant.
  std::size_t total_budget = 0, total_prompt = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    total_budget += budgets[i];
    total_prompt += prompts[i].rows();
  }
  EXPECT_EQ(spec_sum.decoded, total_budget);
  EXPECT_EQ(serial_sum.decoded, total_budget);
  EXPECT_EQ(spec_sum.prefill_rows, total_prompt);
  EXPECT_EQ(spec_sum.active, total_prompt + total_budget);
  EXPECT_GT(spec_sum.spec_accepted, 0u);
  EXPECT_EQ(spec_sum.spec_proposed,
            spec_sum.spec_accepted + spec_sum.spec_rejected);

  // Lifetime accounting equals the per-step sum, speculation included.
  const auto& life = spec->lifetime();
  EXPECT_EQ(life.active, spec_sum.active);
  EXPECT_EQ(life.decoded, spec_sum.decoded);
  EXPECT_EQ(life.spec_proposed, spec_sum.spec_proposed);
  EXPECT_EQ(life.spec_accepted, spec_sum.spec_accepted);
  EXPECT_EQ(life.spec_rejected, spec_sum.spec_rejected);
  EXPECT_EQ(life.attention.gemm1.checks, spec_sum.attention.gemm1.checks);
  EXPECT_EQ(life.linear.checks, spec_sum.linear.checks);
}

TEST(Spec, RejectsBadOptions) {
  const fx::Model model(serving_config(), 0x55);
  fs::EngineOptions opt;
  opt.spec_tokens = 64;  // 1 + 64 rows would overflow the kernel block
  EXPECT_THROW(fs::DecodeEngine(model, opt), std::invalid_argument);
  opt.spec_tokens = 63;  // largest legal block
  EXPECT_NO_THROW(fs::DecodeEngine(model, opt));
  EXPECT_THROW(fs::PromptLookupProposer(fs::PromptLookupOptions{0, 0}),
               std::invalid_argument);
  // A proposer with speculation off would be silently ignored: fail fast.
  fs::EngineOptions contradictory;
  contradictory.proposer = std::make_shared<RepeatLastProposer>();
  EXPECT_THROW(fs::DecodeEngine(model, contradictory),
               std::invalid_argument);
}
