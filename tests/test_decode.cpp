// Protected single-token decode (KV-cache inference step).
#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.hpp"
#include "core/decode.hpp"
#include "tensor/random.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace ft = ftt::tensor;
using ftt::numeric::Half;

namespace {

struct DecodeEnv {
  static constexpr std::size_t kN = 256, kD = 64;
  ft::MatrixH K{kN, kD}, V{kN, kD};
  std::vector<Half> q;
  std::vector<float> ref;
  DecodeEnv() : q(kD), ref(kD) {
    ft::fill_normal(K, 61);
    ft::fill_normal(V, 62);
    std::mt19937_64 rng(63);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (auto& v : q) v = Half(dist(rng));
    // Reference: standard attention with the decode row as the last query.
    ft::Tensor4H Qt(1, 1, kN, kD), Kt(1, 1, kN, kD), Vt(1, 1, kN, kD);
    for (std::size_t r = 0; r < kN; ++r) {
      for (std::size_t c = 0; c < kD; ++c) {
        Qt.at(0, 0, r, c) = q[c];  // same query in every row; row 0 suffices
        Kt.at(0, 0, r, c) = K(r, c);
        Vt.at(0, 0, r, c) = V(r, c);
      }
    }
    ft::Tensor4F O(1, 1, kN, kD);
    fa::standard_attention(Qt, Kt, Vt, O);
    for (std::size_t c = 0; c < kD; ++c) ref[c] = O.at(0, 0, 0, c);
  }
};

}  // namespace

TEST(Decode, CleanMatchesStandardAttention) {
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  const auto rep = fc::efta_decode_step(env.K, env.V, env.q, out);
  EXPECT_EQ(rep.gemm1.flagged, 0u);
  EXPECT_EQ(rep.exp_check.flagged, 0u);
  EXPECT_EQ(rep.range_corrections, 0u);
  for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
    EXPECT_NEAR(out[c], env.ref[c], 2e-3f) << c;
  }
}

TEST(Decode, RejectsBadShapes) {
  ft::MatrixH K(128, 64), V(128, 64);
  std::vector<Half> q(64);
  std::vector<float> out(64);
  {
    std::vector<Half> q_short(32);  // q must have d entries
    EXPECT_THROW(fc::efta_decode_step(K, V, q_short, out),
                 std::invalid_argument);
  }
  {
    ft::MatrixH V_bad(64, 64);  // V must match K's shape
    EXPECT_THROW(fc::efta_decode_step(K, V_bad, q, out),
                 std::invalid_argument);
  }
  {
    ft::MatrixH K0(0, 64), V0(0, 64);  // empty context
    EXPECT_THROW(fc::efta_decode_step(K0, V0, q, out), std::invalid_argument);
  }
  {
    ft::MatrixH K3(64, 3), V3(64, 3);  // d % stride != 0
    std::vector<Half> q3(3);
    std::vector<float> out3(3);
    EXPECT_THROW(fc::efta_decode_step(K3, V3, q3, out3),
                 std::invalid_argument);
  }
}

TEST(Decode, RaggedContextMatchesStandardAttention) {
  // Context lengths that are not multiples of the 64-row checksum tile must
  // work: the ragged tail is zero-padded into a full checksum footprint.
  constexpr std::size_t kD = 64;
  for (const std::size_t n : {1u, 2u, 7u, 63u, 65u, 100u, 127u, 129u}) {
    ft::MatrixH K(n, kD), V(n, kD);
    ft::fill_normal(K, 400 + n);
    ft::fill_normal(V, 500 + n);
    std::vector<Half> q(kD);
    std::mt19937_64 rng(600 + n);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (auto& v : q) v = Half(dist(rng));

    ft::Tensor4H Qt(1, 1, n, kD), Kt(1, 1, n, kD), Vt(1, 1, n, kD);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < kD; ++c) {
        Qt.at(0, 0, r, c) = q[c];
        Kt.at(0, 0, r, c) = K(r, c);
        Vt.at(0, 0, r, c) = V(r, c);
      }
    }
    ft::Tensor4F O(1, 1, n, kD);
    fa::standard_attention(Qt, Kt, Vt, O);

    std::vector<float> out(kD);
    const auto rep = fc::efta_decode_step(K, V, q, out);
    EXPECT_EQ(rep.gemm1.flagged, 0u) << n;
    EXPECT_EQ(rep.exp_check.flagged, 0u) << n;
    EXPECT_EQ(rep.gemm2.flagged, 0u) << n;
    EXPECT_EQ(rep.range_corrections, 0u) << n;
    for (std::size_t c = 0; c < kD; ++c) {
      EXPECT_NEAR(out[c], O.at(0, 0, 0, c), 2e-3f) << "n=" << n << " c=" << c;
    }
  }
}

TEST(Decode, ReusedInjectorReportsPerCallDelta) {
  // faults_injected counts the flips placed during *this* call, so reports
  // from consecutive calls sharing one injector can be merged without
  // double counting (the batched path relies on the same accounting).
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 100, 30);
  const auto first = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(first.faults_injected, 1u);
  const auto second = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(second.faults_injected, 0u);  // the single flip already fired
  EXPECT_EQ((first + second).faults_injected, 1u);
}

TEST(Decode, RaggedContextCorrectsGemm1Fault) {
  constexpr std::size_t kD = 64, kN = 100;
  ft::MatrixH K(kN, kD), V(kN, kD);
  ft::fill_normal(K, 71);
  ft::fill_normal(V, 72);
  std::vector<Half> q(kD);
  std::mt19937_64 rng(73);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (auto& v : q) v = Half(dist(rng));

  std::vector<float> ref(kD), out(kD);
  fc::efta_decode_step(K, V, q, ref);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 80, 30);
  const auto rep = fc::efta_decode_step(K, V, q, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm1.corrected + rep.gemm1.checksum_repairs, 1u);
  for (std::size_t c = 0; c < kD; ++c) {
    EXPECT_NEAR(out[c], ref[c], 1e-2f) << c;
  }
}

TEST(Decode, CorrectsGemm1Fault) {
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 100, 30);
  const auto rep = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm1.corrected, 1u);
  for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
    EXPECT_NEAR(out[c], env.ref[c], 1e-2f) << c;
  }
}

TEST(Decode, RecoversFromExpFault) {
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  auto inj = ff::FaultInjector::single(ff::Site::kExp, 77, 30);
  const auto rep = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.exp_check.flagged, 1u);
  for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
    EXPECT_NEAR(out[c], env.ref[c], 1e-2f) << c;
  }
}

TEST(Decode, CorrectsGemm2Fault) {
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm2, 50, 30);
  const auto rep = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_GE(rep.gemm2.corrected + rep.gemm2.checksum_repairs, 1u);
  for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
    EXPECT_NEAR(out[c], env.ref[c], 1e-2f) << c;
  }
}

TEST(Decode, RangeRestrictsRowsumFault) {
  DecodeEnv env;
  std::vector<float> out(DecodeEnv::kD);
  auto inj = ff::FaultInjector::single(ff::Site::kReduceSum, 1, 29);
  const auto rep = fc::efta_decode_step(env.K, env.V, env.q, out, {}, &inj);
  EXPECT_EQ(rep.faults_injected, 1u);
  for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
    EXPECT_TRUE(std::isfinite(out[c]));
  }
}

TEST(Decode, GrowingCacheStaysConsistent) {
  // The decode step over a prefix of the cache equals standard attention
  // over that prefix — the invariant autoregressive generation relies on.
  DecodeEnv env;
  for (const std::size_t n : {64u, 128u, 192u, 256u}) {
    ft::MatrixH K(n, DecodeEnv::kD), V(n, DecodeEnv::kD);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
        K(r, c) = env.K(r, c);
        V(r, c) = env.V(r, c);
      }
    }
    std::vector<float> out(DecodeEnv::kD);
    const auto rep = fc::efta_decode_step(K, V, env.q, out);
    EXPECT_EQ(rep.gemm1.flagged, 0u) << n;
    // Weights must be a convex combination of the prefix's V rows.
    for (std::size_t c = 0; c < DecodeEnv::kD; ++c) {
      float lo = 1e30f, hi = -1e30f;
      for (std::size_t r = 0; r < n; ++r) {
        lo = std::min(lo, V(r, c).to_float());
        hi = std::max(hi, V(r, c).to_float());
      }
      EXPECT_GE(out[c], lo - 1e-3f);
      EXPECT_LE(out[c], hi + 1e-3f);
    }
  }
}
