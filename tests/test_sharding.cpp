// Shard-parallel serving: ShardSpec head partitioning, the head-range
// efta_decode_batch overload, the DeterministicCombiner, and engine-level
// bit-parity of sharded ticks (N in {1, 2, 4}) against the solo engine —
// on a mixed prefill/decode/speculative/preemption workload, under
// identical injected faults, and with per-shard fault attribution.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/decode.hpp"
#include "fault/fault.hpp"
#include "serve/combiner.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/shard.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Constant-row read-out head (gamma = 0): generation becomes a repetitive
/// stream the prompt-lookup drafter predicts, so the speculation parity
/// test exercises accepted commits, not just rollbacks.
fx::Model make_spec_model() {
  fx::ModelConfig cfg = serving_config();
  fx::Model model(cfg, 0x5eed);
  auto& gamma = model.final_ln().gamma();
  auto& beta = model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  return model;
}

void fill_cache(fs::KvCache& cache, std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = cache.heads() * cache.dim();
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
  }
}

void expect_reports_equal(const fa::FtReport& a, const fa::FtReport& b,
                          const char* what) {
  EXPECT_EQ(a.gemm1.checks, b.gemm1.checks) << what;
  EXPECT_EQ(a.gemm1.flagged, b.gemm1.flagged) << what;
  EXPECT_EQ(a.exp_check.checks, b.exp_check.checks) << what;
  EXPECT_EQ(a.gemm2.checks, b.gemm2.checks) << what;
  EXPECT_EQ(a.range_corrections, b.range_corrections) << what;
  EXPECT_EQ(a.total_detected(), b.total_detected()) << what;
  EXPECT_EQ(a.total_corrected(), b.total_corrected()) << what;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << what;
}

void expect_stats_equal(const fs::StepStats& a, const fs::StepStats& b) {
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.prefill_chunks, b.prefill_chunks);
  EXPECT_EQ(a.prefill_rows, b.prefill_rows);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.spec_proposed, b.spec_proposed);
  EXPECT_EQ(a.spec_accepted, b.spec_accepted);
  EXPECT_EQ(a.spec_rejected, b.spec_rejected);
  EXPECT_EQ(a.preempted, b.preempted);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.shared_tiles, b.shared_tiles);
  EXPECT_EQ(a.activations_clipped, b.activations_clipped);
  EXPECT_EQ(a.linear.checks, b.linear.checks);
  EXPECT_EQ(a.linear.flagged, b.linear.flagged);
  expect_reports_equal(a.attention, b.attention, "stats.attention");
}

/// The mixed workload every engine-parity test drives: a prefix-shared
/// prompt pair, short decoders, a 4-tile pool that forces preemption, and
/// drafted blocks (mostly rejected on a chaotic model).
struct Workload {
  std::vector<ft::MatrixF> prompts;
  std::vector<std::size_t> budgets;
};

Workload mixed_workload(std::size_t hidden) {
  Workload w;
  // Two prompts sharing a 128-row prefix (2 shareable tiles) + unique tails.
  ft::MatrixF common = random_prompt(128, hidden, 0xc0de);
  for (std::size_t i = 0; i < 2; ++i) {
    ft::MatrixF p(140, hidden);
    for (std::size_t r = 0; r < 128; ++r) {
      for (std::size_t c = 0; c < hidden; ++c) p(r, c) = common(r, c);
    }
    for (std::size_t r = 128; r < 140; ++r) {
      for (std::size_t c = 0; c < hidden; ++c) {
        p(r, c) = common(0, c) * 0.1f + static_cast<float>(i + r) * 1e-3f;
      }
    }
    w.prompts.push_back(std::move(p));
    w.budgets.push_back(6);
  }
  // Two prompts sitting just under a tile boundary: their generation grows
  // them across it mid-run, so the admitted batch's demand (3 + 1 shared
  // + 2 + 2 = 8 tiles) outgrows the 6-tile pool and forces preemption.
  w.prompts.push_back(random_prompt(60, hidden, 0xaaa));
  w.budgets.push_back(9);
  w.prompts.push_back(random_prompt(62, hidden, 0xbbb));
  w.budgets.push_back(12);
  return w;
}

fs::EngineOptions sharded_options(std::size_t shards) {
  fs::EngineOptions opt;
  opt.shards = shards;
  opt.spec_tokens = 4;
  // 6 context tiles: every request fits alone (the 140-row prompts need 3),
  // but the full batch grows to 8 — the preemption path fires (asserted
  // below).
  opt.scheduler.max_kv_tiles = 6;
  opt.scheduler.max_batch_size = 4;
  return opt;
}

/// Drive an engine over the workload until idle, staggered so the shared
/// prefix is sealed (ticks 0..2 prefill prompt 0's tiles) before the
/// sharers are submitted — every engine sees the identical sequence.
fs::StepStats drive(fs::DecodeEngine& engine, const Workload& w,
                    std::vector<fs::DecodeEngine::RequestId>& ids) {
  fs::StepStats total;
  ids.push_back(engine.submit(w.prompts[0], w.budgets[0]));
  for (int t = 0; t < 3; ++t) total.merge(engine.step());
  for (std::size_t i = 1; i < w.prompts.size(); ++i) {
    ids.push_back(engine.submit(w.prompts[i], w.budgets[i]));
  }
  total.merge(engine.run_until_idle(nullptr, /*max_ticks=*/10000));
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardSpec / shard_range
// ---------------------------------------------------------------------------

TEST(ShardSpec, RangePartitionsAnyTotal) {
  for (std::size_t nshards : {1u, 2u, 3u, 4u, 7u}) {
    for (std::size_t total : {0u, 1u, 2u, 5u, 64u, 65u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t s = 0; s < nshards; ++s) {
        const auto [b, e] = fc::shard_range(s, nshards, total);
        EXPECT_EQ(b, prev_end);  // contiguous, in order
        EXPECT_LE(e - b, total / nshards + 1);
        EXPECT_GE(e - b, total / nshards);  // even to within one
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, total) << nshards << " shards over " << total;
      EXPECT_EQ(prev_end, total);
    }
  }
  EXPECT_THROW((void)fc::shard_range(0, 0, 4), std::invalid_argument);
  EXPECT_THROW((void)fc::shard_range(2, 2, 4), std::invalid_argument);
}

TEST(ShardSpec, MoreShardsThanHeadsYieldsEmptyShards) {
  // tiny has 2 heads; 4 shards -> two owners, two empty.
  std::size_t owned = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const auto spec = fc::ShardSpec::for_shard(s, 4, 2);
    owned += spec.heads();
    if (s >= 2) {
      EXPECT_TRUE(spec.empty());
    }
  }
  EXPECT_EQ(owned, 2u);
  const auto spec0 = fc::ShardSpec::for_shard(0, 4, 2);
  EXPECT_TRUE(spec0.contains(0));
  EXPECT_FALSE(spec0.contains(1));
}

// ---------------------------------------------------------------------------
// Head-range batch overload
// ---------------------------------------------------------------------------

TEST(Sharding, HeadRangeBatchUnionMatchesFullBatch) {
  const std::size_t lengths[] = {33, 100, 1};
  constexpr std::size_t kHeads = 3, kDim = 32;
  std::vector<fs::KvCache> caches;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 4000 + i);
  }

  const std::size_t items_n = caches.size() * kHeads;
  std::vector<std::vector<Half>> queries;
  for (std::size_t i = 0; i < items_n; ++i) {
    queries.emplace_back(kDim);
    std::mt19937_64 rng(5000 + i);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (auto& x : queries.back()) x = Half(dist(rng));
  }

  auto build = [&](std::vector<std::vector<float>>& out,
                   std::vector<std::size_t>& item_heads) {
    std::vector<fc::DecodeWorkItem> items;
    out.assign(items_n, std::vector<float>(kDim, -7.0f));
    item_heads.clear();
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t h = 0; h < kHeads; ++h) {
        const std::size_t i = r * kHeads + h;
        items.push_back(fc::DecodeWorkItem{caches[r].slice(h),
                                           queries[i].data(),
                                           out[i].data()});
        item_heads.push_back(h);
      }
    }
    return items;
  };

  // Reference: the unsharded batch.
  std::vector<std::vector<float>> full_out;
  std::vector<std::size_t> item_heads;
  auto items = build(full_out, item_heads);
  std::vector<fa::FtReport> full_item(items_n);
  const fa::FtReport full =
      fc::efta_decode_batch(items, {}, nullptr, full_item);

  for (std::size_t nshards : {1u, 2u, 3u}) {
    std::vector<std::vector<float>> out;
    std::vector<std::size_t> heads2;
    auto items2 = build(out, heads2);
    std::vector<fa::FtReport> per_item(items_n);
    fa::FtReport merged;
    for (std::size_t s = 0; s < nshards; ++s) {
      const auto spec = fc::ShardSpec::for_shard(s, nshards, kHeads);
      merged += fc::efta_decode_batch(items2, heads2, spec, {}, nullptr,
                                      per_item);
    }
    // Union of shard outputs == full batch, bit for bit.
    for (std::size_t i = 0; i < items_n; ++i) {
      for (std::size_t c = 0; c < kDim; ++c) {
        EXPECT_EQ(out[i][c], full_out[i][c])
            << nshards << " shards, item " << i << " c " << c;
      }
      EXPECT_EQ(per_item[i].gemm1.checks, full_item[i].gemm1.checks);
      EXPECT_EQ(per_item[i].gemm2.checks, full_item[i].gemm2.checks);
    }
    expect_reports_equal(merged, full, "merged shard reports");
  }

  // An empty shard runs nothing and reports nothing.
  std::vector<std::vector<float>> out;
  std::vector<std::size_t> heads3;
  auto items3 = build(out, heads3);
  const fa::FtReport none = fc::efta_decode_batch(
      items3, heads3, fc::ShardSpec{1, 1}, {}, nullptr, {});
  EXPECT_EQ(none.gemm1.checks, 0u);
  for (std::size_t i = 0; i < items_n; ++i) {
    EXPECT_EQ(out[i][0], -7.0f);  // untouched sentinel
  }

  EXPECT_THROW(
      (void)fc::efta_decode_batch(items3, std::span<const std::size_t>{},
                                  fc::ShardSpec{0, 1}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DeterministicCombiner
// ---------------------------------------------------------------------------

TEST(Combiner, SingleShardReduceIsExactCopy) {
  const fs::DeterministicCombiner comb(8);
  ft::MatrixF a(3, 10);
  ft::fill_normal(a, 1);
  ft::MatrixF out(3, 10);
  const ft::MatrixF* parts[] = {&a};
  comb.reduce(parts, out);
  EXPECT_EQ(out, a);
}

TEST(Combiner, ReduceIsFixedOrderDeterministicAndCorrect) {
  const std::size_t n = 4, len = 1000;
  std::vector<std::vector<float>> parts(n, std::vector<float>(len));
  std::mt19937_64 rng(99);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (auto& p : parts) {
    for (auto& x : p) x = dist(rng);
  }
  std::vector<std::span<const float>> views(parts.begin(), parts.end());

  const fs::DeterministicCombiner comb(64);
  std::vector<float> out1(len), out2(len);
  comb.reduce(views, out1);
  comb.reduce(views, out2);
  EXPECT_EQ(out1, out2);  // bit-deterministic across calls

  // Values match the mathematical sum to float tolerance.
  for (std::size_t i = 0; i < len; i += 97) {
    double exact = 0.0;
    for (const auto& p : parts) exact += p[i];
    EXPECT_NEAR(out1[i], static_cast<float>(exact), 1e-4);
  }

  // Pin the ring rotation: chunk c accumulates starting at shard c % n, so
  // element 64 (first of chunk 1) must equal the float sum taken in the
  // exact order 1, 2, 3, 0.
  float expect0 = parts[1][64];
  for (std::size_t s = 2; s <= n; ++s) expect0 += parts[s % n][64];
  EXPECT_EQ(out1[64], expect0);

  EXPECT_THROW(comb.reduce(std::span<const std::span<const float>>{},
                           std::span<float>{}),
               std::invalid_argument);
  EXPECT_THROW(fs::DeterministicCombiner(0), std::invalid_argument);
}

TEST(Combiner, MergesReportsAndStatsInShardOrder) {
  std::vector<fa::FtReport> reps(3);
  reps[0].gemm1.checks = 5;
  reps[1].gemm2.flagged = 2;
  reps[2].faults_injected = 1;
  const fa::FtReport m = fs::DeterministicCombiner::merge(reps);
  EXPECT_EQ(m.gemm1.checks, 5u);
  EXPECT_EQ(m.gemm2.flagged, 2u);
  EXPECT_EQ(m.faults_injected, 1u);

  std::vector<fs::StepStats> stats(2);
  stats[0].decoded = 3;
  stats[0].linear.checks = 7;
  stats[1].decoded = 4;
  stats[1].spec_accepted = 2;
  const fs::StepStats s = fs::DeterministicCombiner::merge(stats);
  EXPECT_EQ(s.decoded, 7u);
  EXPECT_EQ(s.spec_accepted, 2u);
  EXPECT_EQ(s.linear.checks, 7u);
}

// ---------------------------------------------------------------------------
// Engine-level shard parity
// ---------------------------------------------------------------------------

TEST(ShardedEngine, BitIdenticalToSoloOnMixedWorkload) {
  const fx::Model model(serving_config(), 0x77);
  const std::size_t hidden = model.config().hidden;
  const Workload w = mixed_workload(hidden);

  // Solo reference.
  fs::DecodeEngine solo(model, sharded_options(1));
  std::vector<fs::DecodeEngine::RequestId> solo_ids;
  const fs::StepStats solo_stats = drive(solo, w, solo_ids);
  // The workload must actually exercise the interesting paths.
  EXPECT_GT(solo_stats.preempted, 0u);
  EXPECT_GT(solo_stats.shared_tiles, 0u);
  EXPECT_GT(solo_stats.decoded, 0u);

  for (std::size_t shards : {2u, 4u}) {
    fs::DecodeEngine sharded(model, sharded_options(shards));
    EXPECT_EQ(sharded.shards(), shards);
    std::vector<fs::DecodeEngine::RequestId> ids;
    const fs::StepStats stats = drive(sharded, w, ids);
    expect_stats_equal(stats, solo_stats);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(sharded.context_length(ids[i]),
                solo.context_length(solo_ids[i]));
      const auto hs = solo.hidden(solo_ids[i]);
      const auto hh = sharded.hidden(ids[i]);
      ASSERT_EQ(hs.size(), hh.size());
      for (std::size_t c = 0; c < hs.size(); ++c) {
        EXPECT_EQ(hh[c], hs[c])
            << shards << " shards, request " << i << " c " << c;
      }
      expect_reports_equal(sharded.report(ids[i]), solo.report(solo_ids[i]),
                           "per-request report");
    }
    // Per-shard attention reports merge to the engine lifetime total.
    fa::FtReport merged;
    for (const auto& r : sharded.shard_reports()) merged += r;
    expect_reports_equal(merged, sharded.lifetime().attention,
                         "shard_reports sum");
  }
}

TEST(ShardedEngine, SpeculativeCommitsBitIdenticalToSolo) {
  // gamma = 0 read-out: the generated stream repeats, the prompt-lookup
  // drafter locks on, and accepted drafts flow through commit + rollback.
  const fx::Model model = make_spec_model();
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(30, hidden, 0x51c);

  auto run = [&](std::size_t shards) {
    fs::EngineOptions opt;
    opt.shards = shards;
    opt.spec_tokens = 4;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, 24);
    const fs::StepStats stats = engine.run_until_idle(nullptr, 10000);
    return std::pair<fs::StepStats, std::size_t>(stats,
                                                 engine.context_length(id));
  };

  const auto [solo_stats, solo_len] = run(1);
  EXPECT_GT(solo_stats.spec_accepted, 0u);  // speculation actually commits
  for (std::size_t shards : {2u, 4u}) {
    const auto [stats, len] = run(shards);
    expect_stats_equal(stats, solo_stats);
    EXPECT_EQ(len, solo_len);
  }
}

TEST(ShardedEngine, FaultParityWithSoloUnderIdenticalInjection) {
  const fx::Model model(serving_config(), 0xfa17);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(70, hidden, 0xfeed);

  auto run = [&](std::size_t shards) {
    fs::EngineOptions opt;
    opt.shards = shards;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, 8);
    // An injected tick runs the solo body in both engines, so one
    // identically-seeded fault process observes the identical call
    // sequence.
    ff::FaultInjector inj = ff::FaultInjector::bernoulli(5e-6, 0x5eed11);
    engine.run_until_idle(&inj, 10000);
    struct Out {
      std::vector<float> hidden;
      fa::FtReport report;
      std::size_t injected;
    } out;
    out.hidden.assign(engine.hidden(id).begin(), engine.hidden(id).end());
    out.report = engine.report(id);
    out.injected = inj.injected();
    return out;
  };

  const auto solo = run(1);
  const auto sharded = run(2);
  EXPECT_GT(solo.injected, 0u);  // the campaign actually placed flips
  EXPECT_EQ(sharded.injected, solo.injected);
  expect_reports_equal(sharded.report, solo.report, "injected report");
  ASSERT_EQ(sharded.hidden.size(), solo.hidden.size());
  for (std::size_t c = 0; c < solo.hidden.size(); ++c) {
    EXPECT_EQ(sharded.hidden[c], solo.hidden[c]) << "c " << c;
  }
}

TEST(ShardedEngine, PoisonedShardFaultIsAttributedToThatShardOnly) {
  const fx::Model model(serving_config(), 0xbad);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(70, hidden, 0x90);

  // Scan single-flip call indices until a flip lands in shard 1's head
  // range (tiny: head 1 exactly), then assert the whole fault — injection,
  // detection, correction — stays in shard 1's report.
  bool found = false;
  for (std::size_t idx = 0; idx < 2000 && !found; idx += 13) {
    fs::EngineOptions opt;
    opt.shards = 2;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, 2);
    engine.step();  // admit + prefill chunk 1 (clean)
    engine.step();  // prefill chunk 2 (clean)
    ff::FaultInjector inj =
        ff::FaultInjector::single(ff::Site::kGemm1, idx, 30);
    engine.step(&inj);  // decode tick under the flip
    (void)id;
    if (inj.injected() == 0) continue;
    const auto reports = engine.shard_reports();
    ASSERT_EQ(reports.size(), 2u);
    if (reports[1].faults_injected == 0) continue;  // flip hit shard 0
    found = true;
    // The poisoned shard owns the fault *and* its detection...
    EXPECT_EQ(reports[1].faults_injected, 1u);
    EXPECT_GT(reports[1].total_detected() + reports[1].total_corrected(),
              0u);
    // ...and the healthy shard's report stays clean of it.
    EXPECT_EQ(reports[0].faults_injected, 0u);
    const std::size_t slack = reports[0].gemm1.checks / 1000 + 2;
    EXPECT_LE(reports[0].total_detected(), slack);
  }
  EXPECT_TRUE(found) << "no scanned flip index hit shard 1";
}

TEST(ShardedEngine, RingReduceModeIsDeterministicAndClose) {
  const fx::Model model(serving_config(), 0x419);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(40, hidden, 0x5151);

  auto run_ring = [&] {
    fs::EngineOptions opt;
    opt.shards = 2;
    opt.combine = fs::CombineMode::kRingReduce;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, 6);
    engine.run_until_idle(nullptr, 10000);
    return std::vector<float>(engine.hidden(id).begin(),
                              engine.hidden(id).end());
  };
  const auto a = run_ring();
  const auto b = run_ring();
  EXPECT_EQ(a, b);  // deterministic for a fixed shard count

  fs::DecodeEngine solo(model);
  const auto id = solo.submit(prompt, 6);
  solo.run_until_idle(nullptr, 10000);
  const auto hs = solo.hidden(id);
  ASSERT_EQ(a.size(), hs.size());
  // Ring reduction re-associates float adds: close, not necessarily equal.
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_NEAR(a[c], hs[c], 1e-3f + 1e-3f * std::fabs(hs[c])) << "c " << c;
  }
}

TEST(ShardedEngine, RejectsUnshardableConfigurations) {
  const fx::Model model(serving_config(), 1);
  fs::EngineOptions opt;
  opt.shards = 0;
  EXPECT_THROW(fs::DecodeEngine(model, opt), std::invalid_argument);

  // head_dim 32 cannot land head-column slices on 64-wide ABFT tiles.
  fx::ModelConfig narrow = serving_config();
  narrow.hidden = 64;
  narrow.heads = 2;
  narrow.ffn_inner = 128;
  const fx::Model narrow_model(narrow, 2);
  fs::EngineOptions opt2;
  opt2.shards = 2;
  EXPECT_THROW(fs::DecodeEngine(narrow_model, opt2), std::invalid_argument);
  // ...while the solo engine still serves it.
  fs::DecodeEngine ok(narrow_model);
  EXPECT_EQ(ok.shards(), 1u);
}
