// Memoized sealed-tile images (KvCache / TilePool / EngineOptions::images):
// bit-parity across all three core::ImagePolicy settings and exact bytes()
// accounting for each.
//
// An image is a pure cache — a copy of a sealed tile's operands in decode
// order (widened fp32 under kF32, pre-transposed Half bits under kF16T) —
// so every observable output must be bit-identical across kNone / kF16T /
// kF32: per-slice decode, truncate/rollback, engine runs under prefix
// sharing, tight-pool eviction and preemption, and speculative decode with
// its KV rollbacks.  These tests run each of those workloads once per
// policy, differing only in the knob, and compare bitwise.  They also pin
// the memory story: bytes() must grow by exactly one image per sealed
// (tile, head) — 2x the tile under kF32, ~0.5x under kF16T — and shrink
// symmetrically when truncation unseals tiles, and a kF16T sealed tile
// must stay within 1.7x of the bare fp16 slab.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "abft/strided_abft.hpp"
#include "core/decode.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/tile_pool.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "transformer/model.hpp"

namespace fc = ftt::core;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

constexpr std::size_t kHeads = 4, kDim = 64;
constexpr int kStride = ftt::abft::StridedAbft::kDefaultStride;

constexpr fc::ImagePolicy kPolicies[] = {
    fc::ImagePolicy::kNone, fc::ImagePolicy::kF16T, fc::ImagePolicy::kF32};

std::vector<Half> random_halves(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> v(n);
  for (auto& x : v) x = Half(dist(rng));
  return v;
}

void append_tokens(fs::KvCache& cache, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
  for (std::size_t t = 0; t < n; ++t) {
    for (auto& x : k) x = Half(dist(rng));
    for (auto& x : v) x = Half(dist(rng));
    cache.append(k, v);
  }
}

/// Decode one token over every head of `cache` and return the heads*dim
/// output block.
std::vector<float> decode_all_heads(const fs::KvCache& cache,
                                    const std::vector<Half>& query) {
  std::vector<float> out(kHeads * kDim, 0.0f);
  for (std::size_t h = 0; h < kHeads; ++h) {
    fc::efta_decode_block(fc::DecodeWorkItem{
        cache.slice(h), query.data() + h * kDim, out.data() + h * kDim});
  }
  return out;
}

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Near-100%-acceptance model for the speculative workload: constant
/// final-LN output makes the prompt-lookup drafter right almost always
/// (same construction as test_spec).
fx::Model constant_stream_model(std::uint64_t seed) {
  fx::Model model(serving_config(), seed);
  auto& gamma = model.final_ln().gamma();
  auto& beta = model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  return model;
}

void expect_bitwise(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverged at " << i;
  }
}

}  // namespace

TEST(ImagePolicy, KvCacheDecodeBitParityAndSlicePointers) {
  fs::KvCache f32(kHeads, kDim, kStride, fc::ImagePolicy::kF32);
  fs::KvCache f16t(kHeads, kDim, kStride, fc::ImagePolicy::kF16T);
  fs::KvCache none(kHeads, kDim, kStride, fc::ImagePolicy::kNone);
  EXPECT_EQ(f32.images(), fc::ImagePolicy::kF32);
  EXPECT_EQ(f16t.images(), fc::ImagePolicy::kF16T);
  EXPECT_EQ(none.images(), fc::ImagePolicy::kNone);

  // 150 tokens: two sealed tiles plus a 22-row ragged tail per head.
  append_tokens(f32, 150, 0x111);
  append_tokens(f16t, 150, 0x111);
  append_tokens(none, 150, 0x111);

  for (std::size_t h = 0; h < kHeads; ++h) {
    const fc::KvSlice sw = f32.slice(h), sh = f16t.slice(h),
                      so = none.slice(h);
    EXPECT_EQ(so.f32, nullptr);
    EXPECT_EQ(so.f16t, nullptr);
    ASSERT_NE(sw.f32, nullptr);
    EXPECT_EQ(sw.f16t, nullptr);  // a cache holds one image kind at most
    EXPECT_NE(sw.f32[0], nullptr);  // sealed tiles carry images...
    EXPECT_NE(sw.f32[1], nullptr);
    EXPECT_EQ(sw.f32[2], nullptr);  // ...the open ragged tail does not
    ASSERT_NE(sh.f16t, nullptr);
    EXPECT_EQ(sh.f32, nullptr);
    EXPECT_NE(sh.f16t[0], nullptr);
    EXPECT_NE(sh.f16t[1], nullptr);
    EXPECT_EQ(sh.f16t[2], nullptr);
  }

  const auto q = random_halves(kHeads * kDim, 0x222);
  const auto out_f32 = decode_all_heads(f32, q);
  const auto out_f16t = decode_all_heads(f16t, q);
  const auto out_none = decode_all_heads(none, q);
  expect_bitwise(out_f32, out_none, "kF32 vs kNone decode");
  expect_bitwise(out_f16t, out_none, "kF16T vs kNone decode");
}

TEST(ImagePolicy, KvCacheBytesAccountingGrowsAndShrinksWithSeals) {
  fs::KvCache f32(kHeads, kDim, kStride, fc::ImagePolicy::kF32);
  fs::KvCache f16t(kHeads, kDim, kStride, fc::ImagePolicy::kF16T);
  fs::KvCache none(kHeads, kDim, kStride, fc::ImagePolicy::kNone);
  const std::size_t img_bytes =
      fs::detail::f32_image_floats(kDim, kStride) * sizeof(float);
  const std::size_t himg_bytes =
      fs::detail::f16t_image_halves(kDim, kStride) * sizeof(Half);

  // A kF32 image is exactly the fp16 slab widened: 2x the halves in bytes.
  EXPECT_EQ(img_bytes, (2 * 64 * kDim + 2 * 64 * kStride +
                        2 * static_cast<std::size_t>(kStride) * kDim) *
                           sizeof(float));
  // A kF16T image carries only the K-side operands, in Half.
  EXPECT_EQ(himg_bytes,
            (64 * kDim + 2 * static_cast<std::size_t>(kStride) * kDim) *
                sizeof(Half));

  append_tokens(f32, 150, 0x333);
  append_tokens(f16t, 150, 0x333);
  append_tokens(none, 150, 0x333);
  // Two sealed tiles per head carry images; the open third tile does not.
  EXPECT_EQ(f32.bytes(), none.bytes() + 2 * kHeads * img_bytes);
  EXPECT_EQ(f16t.bytes(), none.bytes() + 2 * kHeads * himg_bytes);

  // Rolling back into the first tile unseals tile 1 and drops its images
  // (and tile 2 entirely); accounting shrinks in step.
  f32.truncate(40);
  f16t.truncate(40);
  none.truncate(40);
  EXPECT_EQ(f32.bytes(), none.bytes());
  EXPECT_EQ(f16t.bytes(), none.bytes());
  for (std::size_t h = 0; h < kHeads; ++h) {
    EXPECT_EQ(f32.slice(h).f32[0], nullptr);  // tile 0 reopened
    EXPECT_EQ(f16t.slice(h).f16t[0], nullptr);
  }

  // Re-extending across the boundary re-seals and rebuilds: parity again.
  append_tokens(f32, 60, 0x444);
  append_tokens(f16t, 60, 0x444);
  append_tokens(none, 60, 0x444);
  EXPECT_EQ(f32.bytes(), none.bytes() + kHeads * img_bytes);
  EXPECT_EQ(f16t.bytes(), none.bytes() + kHeads * himg_bytes);
  const auto q = random_halves(kHeads * kDim, 0x555);
  const auto out_none = decode_all_heads(none, q);
  expect_bitwise(decode_all_heads(f32, q), out_none,
                 "post-rollback decode, kF32");
  expect_bitwise(decode_all_heads(f16t, q), out_none,
                 "post-rollback decode, kF16T");
}

TEST(ImagePolicy, TilePoolBytesAndDisableWithoutEncStride) {
  fs::TilePoolOptions opt;
  opt.layers = 2;
  opt.heads = 2;
  opt.dim = 64;
  opt.capacity_tiles = 4;
  opt.images = fc::ImagePolicy::kF32;
  fs::TilePool f32(opt);
  opt.images = fc::ImagePolicy::kF16T;
  fs::TilePool f16t(opt);
  opt.images = fc::ImagePolicy::kNone;
  fs::TilePool none(opt);

  EXPECT_EQ(f32.images(), fc::ImagePolicy::kF32);
  EXPECT_EQ(f16t.images(), fc::ImagePolicy::kF16T);
  const auto tw = f32.acquire();
  const auto th = f16t.acquire();
  const auto to = none.acquire();
  ASSERT_NE(tw, fs::TilePool::kNoTile);
  // The fp32 slab mirrors the fp16 one float-for-half: 3x bytes per tile.
  EXPECT_EQ(f32.bytes_in_use(), 3 * none.bytes_in_use());
  EXPECT_NE(f32.f32_image(tw, 0, 0), nullptr);
  EXPECT_EQ(f32.f16t_image(tw, 0, 0), nullptr);
  EXPECT_EQ(none.f32_image(to, 0, 0), nullptr);
  EXPECT_EQ(none.f16t_image(to, 0, 0), nullptr);
  // The f16t image adds only the K-side halves: the acceptance ceiling is
  // 1.7x the bare fp16 slab, and the exact ratio is fixed by the layout.
  EXPECT_NE(f16t.f16t_image(th, 0, 0), nullptr);
  EXPECT_EQ(f16t.f32_image(th, 0, 0), nullptr);
  EXPECT_LE(f16t.bytes_in_use() * 10, none.bytes_in_use() * 17);
  EXPECT_LE(f16t.tile_bytes(fc::TileFmt::kF16) * 10,
            none.tile_bytes(fc::TileFmt::kF16) * 17);
  EXPECT_GT(f16t.tile_bytes(fc::TileFmt::kF16),
            none.tile_bytes(fc::TileFmt::kF16));

  // The images embed the sealed checksum blocks, so neither layout can
  // exist without the encoding memo: enc_stride <= 0 forces kNone.
  opt.images = fc::ImagePolicy::kF32;
  opt.enc_stride = 0;
  fs::TilePool no_enc(opt);
  EXPECT_EQ(no_enc.images(), fc::ImagePolicy::kNone);
  const auto tn = no_enc.acquire();
  EXPECT_EQ(no_enc.f32_image(tn, 0, 0), nullptr);
  opt.images = fc::ImagePolicy::kF16T;
  fs::TilePool no_enc_h(opt);
  EXPECT_EQ(no_enc_h.images(), fc::ImagePolicy::kNone);
  EXPECT_EQ(no_enc_h.f16t_image(no_enc_h.acquire(), 0, 0), nullptr);
}

TEST(ImagePolicy, EngineParityUnderSharingEvictionPreemption) {
  // The tile-pool stress workload — shared prompts over a pool tight
  // enough to force eviction and preemption — run once per image policy.
  // Every request's committed hidden state must match bitwise across all
  // three: images die with the tiles they cache and are rebuilt on
  // recompute, never resurrected stale.
  const fx::Model model(serving_config(), 0x70013);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt_shared = random_prompt(130, hidden, 0xa);

  auto run = [&](fc::ImagePolicy images) {
    fs::EngineOptions opt;
    opt.images = images;
    opt.scheduler.max_batch_size = 3;
    opt.scheduler.max_kv_tiles = 7;  // tight: forces eviction + preemption
    fs::DecodeEngine engine(model, opt);
    std::vector<fs::DecodeEngine::RequestId> ids;
    for (std::size_t i = 0; i < 6; ++i) {
      const ft::MatrixF prompt = (i % 2 == 0)
                                     ? prompt_shared
                                     : random_prompt(40 + 23 * i, hidden,
                                                     0x900 + i);
      ids.push_back(engine.submit(prompt, /*max_new_tokens=*/3 + i % 3,
                                  static_cast<fs::Priority>(i % 2)));
    }
    engine.run_until_idle(nullptr, 4000);
    std::vector<std::vector<float>> h;
    for (const auto id : ids) {
      EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
      const auto s = engine.hidden(id);
      h.emplace_back(s.begin(), s.end());
    }
    return h;
  };

  const auto base = run(fc::ImagePolicy::kNone);
  for (const fc::ImagePolicy p :
       {fc::ImagePolicy::kF16T, fc::ImagePolicy::kF32}) {
    const auto got = run(p);
    ASSERT_EQ(base.size(), got.size());
    for (std::size_t r = 0; r < base.size(); ++r) {
      expect_bitwise(base[r], got[r], "engine hidden state");
    }
  }
}

TEST(ImagePolicy, SpeculativeRollbackParity) {
  // Speculative decode truncates open tiles on every rejected draft and
  // seals across tile boundaries on multi-token commits — both paths must
  // leave the image set exactly as a serial run would, for every policy.
  // Near-100% acceptance maximizes boundary-crossing commits.
  const fx::Model model = constant_stream_model(0xabc1);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(52, hidden, 0xfeed1);

  auto run = [&](fc::ImagePolicy images, std::size_t spec_tokens) {
    fs::EngineOptions opt;
    opt.images = images;
    opt.spec_tokens = spec_tokens;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, /*max_new_tokens=*/30);
    engine.run_until_idle(nullptr, 500);
    EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
    const auto s = engine.hidden(id);
    return std::vector<float>(s.begin(), s.end());
  };

  const auto serial = run(fc::ImagePolicy::kNone, 0);
  for (const fc::ImagePolicy p : kPolicies) {
    const auto spec = run(p, 4);
    expect_bitwise(spec, serial, "speculative vs serial hidden state");
  }
}
