// Memoized widened-fp32 tile images (KvCache / TilePool fp32_images):
// bit-parity with the fp16 path and exact bytes() accounting.
//
// The image is a pure cache — a widened, pre-transposed copy of a sealed
// tile's K/V halves and its four checksum blocks — so every observable
// output must be bit-identical with the option on or off: per-slice decode,
// truncate/rollback, engine runs under prefix sharing, tight-pool eviction
// and preemption, and speculative decode with its KV rollbacks.  These
// tests run each of those workloads twice, differing only in the knob, and
// compare bitwise.  They also pin the memory story: bytes() must grow by
// exactly one image per sealed (tile, head) and shrink symmetrically when
// truncation unseals tiles.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "abft/strided_abft.hpp"
#include "core/decode.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/tile_pool.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "transformer/model.hpp"

namespace fc = ftt::core;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

constexpr std::size_t kHeads = 4, kDim = 64;
constexpr int kStride = ftt::abft::StridedAbft::kDefaultStride;

std::vector<Half> random_halves(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> v(n);
  for (auto& x : v) x = Half(dist(rng));
  return v;
}

void append_tokens(fs::KvCache& cache, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
  for (std::size_t t = 0; t < n; ++t) {
    for (auto& x : k) x = Half(dist(rng));
    for (auto& x : v) x = Half(dist(rng));
    cache.append(k, v);
  }
}

/// Decode one token over every head of `cache` and return the heads*dim
/// output block.
std::vector<float> decode_all_heads(const fs::KvCache& cache,
                                    const std::vector<Half>& query) {
  std::vector<float> out(kHeads * kDim, 0.0f);
  for (std::size_t h = 0; h < kHeads; ++h) {
    fc::efta_decode_block(fc::DecodeWorkItem{
        cache.slice(h), query.data() + h * kDim, out.data() + h * kDim});
  }
  return out;
}

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

/// Near-100%-acceptance model for the speculative workload: constant
/// final-LN output makes the prompt-lookup drafter right almost always
/// (same construction as test_spec).
fx::Model constant_stream_model(std::uint64_t seed) {
  fx::Model model(serving_config(), seed);
  auto& gamma = model.final_ln().gamma();
  auto& beta = model.final_ln().beta();
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 0.0f;
    beta[c] = 0.25f + 0.001f * static_cast<float>(c);
  }
  return model;
}

void expect_bitwise(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverged at " << i;
  }
}

}  // namespace

TEST(Fp32Images, KvCacheDecodeBitParityAndSlicePointers) {
  fs::KvCache with(kHeads, kDim, kStride, /*fp32_images=*/true);
  fs::KvCache without(kHeads, kDim, kStride, /*fp32_images=*/false);
  EXPECT_TRUE(with.fp32_images());
  EXPECT_FALSE(without.fp32_images());

  // 150 tokens: two sealed tiles plus a 22-row ragged tail per head.
  append_tokens(with, 150, 0x111);
  append_tokens(without, 150, 0x111);

  for (std::size_t h = 0; h < kHeads; ++h) {
    const fc::KvSlice sw = with.slice(h), so = without.slice(h);
    EXPECT_EQ(so.f32, nullptr);
    ASSERT_NE(sw.f32, nullptr);
    EXPECT_NE(sw.f32[0], nullptr);  // sealed tiles carry images...
    EXPECT_NE(sw.f32[1], nullptr);
    EXPECT_EQ(sw.f32[2], nullptr);  // ...the open ragged tail does not
  }

  const auto q = random_halves(kHeads * kDim, 0x222);
  expect_bitwise(decode_all_heads(with, q), decode_all_heads(without, q),
                 "image-on vs image-off decode");
}

TEST(Fp32Images, KvCacheBytesAccountingGrowsAndShrinksWithSeals) {
  fs::KvCache with(kHeads, kDim, kStride, /*fp32_images=*/true);
  fs::KvCache without(kHeads, kDim, kStride, /*fp32_images=*/false);
  const std::size_t img_bytes =
      fs::detail::f32_image_floats(kDim, kStride) * sizeof(float);

  // An image is exactly the fp16 slab widened: 2x the halves in bytes.
  EXPECT_EQ(img_bytes, (2 * 64 * kDim + 2 * 64 * kStride +
                        2 * static_cast<std::size_t>(kStride) * kDim) *
                           sizeof(float));

  append_tokens(with, 150, 0x333);
  append_tokens(without, 150, 0x333);
  // Two sealed tiles per head carry images; the open third tile does not.
  EXPECT_EQ(with.bytes(), without.bytes() + 2 * kHeads * img_bytes);

  // Rolling back into the first tile unseals tile 1 and drops its images
  // (and tile 2 entirely); accounting shrinks in step.
  with.truncate(40);
  without.truncate(40);
  EXPECT_EQ(with.bytes(), without.bytes());
  for (std::size_t h = 0; h < kHeads; ++h) {
    EXPECT_EQ(with.slice(h).f32[0], nullptr);  // tile 0 reopened
  }

  // Re-extending across the boundary re-seals and re-widens: parity again.
  append_tokens(with, 60, 0x444);
  append_tokens(without, 60, 0x444);
  EXPECT_EQ(with.bytes(), without.bytes() + kHeads * img_bytes);
  const auto q = random_halves(kHeads * kDim, 0x555);
  expect_bitwise(decode_all_heads(with, q), decode_all_heads(without, q),
                 "post-rollback decode");
}

TEST(Fp32Images, TilePoolBytesAndDisableWithoutEncStride) {
  fs::TilePoolOptions opt;
  opt.layers = 2;
  opt.heads = 2;
  opt.dim = 64;
  opt.capacity_tiles = 4;
  opt.fp32_images = true;
  fs::TilePool with(opt);
  opt.fp32_images = false;
  fs::TilePool without(opt);

  EXPECT_TRUE(with.fp32_images());
  const auto tw = with.acquire();
  const auto to = without.acquire();
  ASSERT_NE(tw, fs::TilePool::kNoTile);
  // The fp32 slab mirrors the fp16 one float-for-half: 3x bytes per tile.
  EXPECT_EQ(with.bytes_in_use(), 3 * without.bytes_in_use());
  EXPECT_NE(with.f32_image(tw, 0, 0), nullptr);
  EXPECT_EQ(without.f32_image(to, 0, 0), nullptr);

  // The image embeds the widened checksum blocks, so it cannot exist
  // without the encoding memo: enc_stride <= 0 forces the knob off.
  opt.fp32_images = true;
  opt.enc_stride = 0;
  fs::TilePool no_enc(opt);
  EXPECT_FALSE(no_enc.fp32_images());
  const auto tn = no_enc.acquire();
  EXPECT_EQ(no_enc.f32_image(tn, 0, 0), nullptr);
}

TEST(Fp32Images, EngineParityUnderSharingEvictionPreemption) {
  // The tile-pool stress workload — shared prompts over a pool tight
  // enough to force eviction and preemption — run twice, differing only in
  // fp32_images.  Every request's committed hidden state must match
  // bitwise: images die with the tiles they cache and are rebuilt on
  // recompute, never resurrected stale.
  const fx::Model model(serving_config(), 0x70013);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt_shared = random_prompt(130, hidden, 0xa);

  auto run = [&](bool images) {
    fs::EngineOptions opt;
    opt.fp32_images = images;
    opt.scheduler.max_batch_size = 3;
    opt.scheduler.max_kv_tiles = 7;  // tight: forces eviction + preemption
    fs::DecodeEngine engine(model, opt);
    std::vector<fs::DecodeEngine::RequestId> ids;
    for (std::size_t i = 0; i < 6; ++i) {
      const ft::MatrixF prompt = (i % 2 == 0)
                                     ? prompt_shared
                                     : random_prompt(40 + 23 * i, hidden,
                                                     0x900 + i);
      ids.push_back(engine.submit(prompt, /*max_new_tokens=*/3 + i % 3,
                                  static_cast<fs::Priority>(i % 2)));
    }
    engine.run_until_idle(nullptr, 4000);
    std::vector<std::vector<float>> h;
    for (const auto id : ids) {
      EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
      const auto s = engine.hidden(id);
      h.emplace_back(s.begin(), s.end());
    }
    return h;
  };

  const auto on = run(true);
  const auto off = run(false);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t r = 0; r < on.size(); ++r) {
    expect_bitwise(on[r], off[r], "engine hidden state");
  }
}

TEST(Fp32Images, SpeculativeRollbackParity) {
  // Speculative decode truncates open tiles on every rejected draft and
  // seals across tile boundaries on multi-token commits — both paths must
  // leave the image set exactly as a serial run would.  Near-100%
  // acceptance maximizes boundary-crossing commits.
  const fx::Model model = constant_stream_model(0xabc1);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(52, hidden, 0xfeed1);

  auto run = [&](bool images, std::size_t spec_tokens) {
    fs::EngineOptions opt;
    opt.fp32_images = images;
    opt.spec_tokens = spec_tokens;
    fs::DecodeEngine engine(model, opt);
    const auto id = engine.submit(prompt, /*max_new_tokens=*/30);
    engine.run_until_idle(nullptr, 500);
    EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
    const auto s = engine.hidden(id);
    return std::vector<float>(s.begin(), s.end());
  };

  const auto spec_on = run(true, 4);
  const auto spec_off = run(false, 4);
  const auto serial_on = run(true, 0);
  expect_bitwise(spec_on, spec_off, "speculative hidden, images on vs off");
  expect_bitwise(spec_on, serial_on, "speculative vs serial, images on");
}
