// StepStats merge discipline and the recovery-era report helpers:
// zero-init, merge()/operator+= accumulation and associativity over the
// recovery-ladder counters, DeterministicCombiner::merge shard-order
// invariance, FtReport/abft::Report::uncorrected() saturation, and
// CampaignStats::silent_corruptions() inclusion-exclusion.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "fault/campaign.hpp"
#include "serve/combiner.hpp"
#include "serve/step_stats.hpp"

namespace fa = ftt::attention;
namespace ff = ftt::fault;
namespace fs = ftt::serve;

namespace {

/// A StepStats with every counter set to a distinct value derived from `k`
/// so a dropped or swapped field shows up as a mismatch somewhere.
fs::StepStats sample(std::size_t k) {
  fs::StepStats s;
  s.active = k + 1;
  s.admitted = k + 2;
  s.prefill_chunks = k + 3;
  s.prefill_rows = k + 4;
  s.decoded = k + 5;
  s.retired = k + 6;
  s.spec_proposed = k + 7;
  s.spec_accepted = k + 8;
  s.spec_rejected = k + 9;
  s.preempted = k + 10;
  s.evicted = k + 11;
  s.shared_tiles = k + 12;
  s.activations_clipped = k + 13;
  s.retried = k + 14;
  s.recovered = k + 15;
  s.degraded = k + 16;
  s.failed = k + 17;
  s.quarantined = k + 18;
  s.scrubbed = k + 19;
  s.repaired = k + 20;
  s.scrub_dropped = k + 21;
  s.drained = k + 22;
  s.attention.gemm1.checks = k + 23;
  s.attention.gemm1.flagged = k + 24;
  s.attention.faults_injected = k + 25;
  s.linear.checks = k + 26;
  s.linear.flagged = k + 27;
  return s;
}

void expect_stats_eq(const fs::StepStats& a, const fs::StepStats& b) {
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.prefill_chunks, b.prefill_chunks);
  EXPECT_EQ(a.prefill_rows, b.prefill_rows);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.spec_proposed, b.spec_proposed);
  EXPECT_EQ(a.spec_accepted, b.spec_accepted);
  EXPECT_EQ(a.spec_rejected, b.spec_rejected);
  EXPECT_EQ(a.preempted, b.preempted);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.shared_tiles, b.shared_tiles);
  EXPECT_EQ(a.activations_clipped, b.activations_clipped);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.scrubbed, b.scrubbed);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.scrub_dropped, b.scrub_dropped);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.attention.gemm1.checks, b.attention.gemm1.checks);
  EXPECT_EQ(a.attention.gemm1.flagged, b.attention.gemm1.flagged);
  EXPECT_EQ(a.attention.faults_injected, b.attention.faults_injected);
  EXPECT_EQ(a.linear.checks, b.linear.checks);
  EXPECT_EQ(a.linear.flagged, b.linear.flagged);
}

}  // namespace

TEST(StepStats, DefaultConstructedIsAllZero) {
  const fs::StepStats s;
  EXPECT_EQ(s.active, 0u);
  EXPECT_EQ(s.retried, 0u);
  EXPECT_EQ(s.recovered, 0u);
  EXPECT_EQ(s.degraded, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.scrubbed, 0u);
  EXPECT_EQ(s.repaired, 0u);
  EXPECT_EQ(s.scrub_dropped, 0u);
  EXPECT_EQ(s.drained, 0u);
  EXPECT_EQ(s.attention.total_detected(), 0u);
  EXPECT_EQ(s.linear.flagged, 0u);

  // Merging a zero is the identity in both directions.
  fs::StepStats a = sample(100);
  const fs::StepStats before = a;
  a.merge(fs::StepStats{});
  expect_stats_eq(a, before);
  fs::StepStats z;
  z.merge(before);
  expect_stats_eq(z, before);
}

TEST(StepStats, MergeAccumulatesRecoveryCounters) {
  fs::StepStats a = sample(0);
  const fs::StepStats b = sample(50);
  a.merge(b);
  EXPECT_EQ(a.retried, (0u + 14) + (50u + 14));
  EXPECT_EQ(a.recovered, (0u + 15) + (50u + 15));
  EXPECT_EQ(a.degraded, (0u + 16) + (50u + 16));
  EXPECT_EQ(a.failed, (0u + 17) + (50u + 17));
  EXPECT_EQ(a.quarantined, (0u + 18) + (50u + 18));
  EXPECT_EQ(a.scrubbed, (0u + 19) + (50u + 19));
  EXPECT_EQ(a.repaired, (0u + 20) + (50u + 20));
  EXPECT_EQ(a.scrub_dropped, (0u + 21) + (50u + 21));
  EXPECT_EQ(a.drained, (0u + 22) + (50u + 22));
  EXPECT_EQ(a.attention.gemm1.checks, (0u + 23) + (50u + 23));
  EXPECT_EQ(a.linear.flagged, (0u + 27) + (50u + 27));
}

TEST(StepStats, PlusEqualsIsAssociative) {
  // ((a += b) += c) must equal (a += (b += c)): integer counters make the
  // merge associative, which is what lets shard combiners, tick loops and
  // the replica router fold in any grouping.
  fs::StepStats left = sample(1);
  left += sample(2);
  left += sample(3);

  fs::StepStats bc = sample(2);
  bc += sample(3);
  fs::StepStats right = sample(1);
  right += bc;

  expect_stats_eq(left, right);
}

TEST(Combiner, StepStatsMergeIsShardOrderInvariant) {
  const std::array<fs::StepStats, 4> shards = {sample(3), sample(11),
                                               sample(7), sample(29)};
  const fs::StepStats forward =
      fs::DeterministicCombiner::merge(std::span<const fs::StepStats>(shards));

  // Every permutation of shard order produces the same totals.
  std::array<fs::StepStats, 4> perm = {shards[2], shards[0], shards[3],
                                       shards[1]};
  const fs::StepStats shuffled =
      fs::DeterministicCombiner::merge(std::span<const fs::StepStats>(perm));
  expect_stats_eq(forward, shuffled);

  // And matches a plain sequential fold.
  fs::StepStats fold;
  for (const fs::StepStats& s : shards) fold.merge(s);
  expect_stats_eq(forward, fold);

  // Recovery counters survive the combine path specifically.
  EXPECT_EQ(forward.retried, 3u + 14 + 11 + 14 + 7 + 14 + 29 + 14);
  EXPECT_EQ(forward.drained, 3u + 22 + 11 + 22 + 7 + 22 + 29 + 22);

  // Empty input merges to zero.
  const fs::StepStats none =
      fs::DeterministicCombiner::merge(std::span<const fs::StepStats>{});
  expect_stats_eq(none, fs::StepStats{});
}

TEST(Report, UncorrectedSaturatesAndCountsEveryRepairKind) {
  ftt::abft::Report r;
  EXPECT_EQ(r.uncorrected(), 0u);
  r.flagged = 10;
  EXPECT_EQ(r.uncorrected(), 10u);
  r.corrected = 4;
  r.recomputed = 3;
  r.checksum_repairs = 2;
  EXPECT_EQ(r.uncorrected(), 1u);
  // More repairs than flags (over-counted recomputes) saturates at zero
  // instead of wrapping.
  r.recomputed = 30;
  EXPECT_EQ(r.uncorrected(), 0u);
}

TEST(FtReport, UncorrectedSaturatesOverSubReports) {
  fa::FtReport r;
  EXPECT_EQ(r.uncorrected(), 0u);
  r.gemm1.flagged = 5;
  r.exp_check.flagged = 2;
  EXPECT_EQ(r.uncorrected(), 7u);
  r.gemm1.corrected = 5;
  EXPECT_EQ(r.uncorrected(), 2u);
  // SNVR replacements count as detection AND correction: they cancel.
  r.range_corrections = 10;
  EXPECT_EQ(r.uncorrected(), 2u);
  // Repairs over-counting detections saturate at zero instead of wrapping.
  r.gemm1.checksum_repairs = 5;
  EXPECT_EQ(r.uncorrected(), 0u);
}

TEST(Campaign, SilentCorruptionsUsesInclusionExclusion) {
  ff::CampaignStats s;
  s.injected = 100;
  s.detected = 60;
  s.absorbed = 50;
  s.absorbed_and_detected = 30;  // overlap: flagged flips that also sat
                                 // under the absorbed threshold
  // covered = 60 + 50 - 30 = 80 -> 20 silent.
  EXPECT_EQ(s.silent_corruptions(), 20u);

  // Full overlap: every absorbed run was also detected.
  s.absorbed_and_detected = 50;
  EXPECT_EQ(s.silent_corruptions(), 40u);

  // Saturation: coverage exceeding the injected count clamps to zero.
  s.detected = 90;
  s.absorbed = 90;
  s.absorbed_and_detected = 0;
  EXPECT_EQ(s.silent_corruptions(), 0u);
}

TEST(Campaign, RunCampaignTracksAbsorbedDetectedOverlap) {
  // Synthetic trials: deviation/flag chosen per call index so every bucket
  // combination appears exactly once per (site, bit) grid point.
  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kGemm1};
  cfg.call_offsets = {0, 1, 2, 3};
  cfg.bits = {30};
  cfg.absorbed_threshold = 0.5f;

  std::size_t trial = 0;
  const auto run = [&](ff::FaultInjector& inj) -> ff::TrialResult {
    // Make the injector actually fire so the run counts as injected.
    (void)inj.corrupt(ff::Site::kGemm1, 1.0f);
    (void)inj.corrupt(ff::Site::kGemm1, 1.0f);
    (void)inj.corrupt(ff::Site::kGemm1, 1.0f);
    (void)inj.corrupt(ff::Site::kGemm1, 1.0f);
    switch (trial++ % 4) {
      case 0: return {0.1f, true};   // absorbed AND detected
      case 1: return {0.9f, true};   // detected only
      case 2: return {0.1f, false};  // absorbed only
      default: return {0.9f, false}; // silent corruption
    }
  };
  const ff::CampaignStats stats = ff::run_campaign(cfg, run);
  EXPECT_EQ(stats.injected, 4u);
  EXPECT_EQ(stats.detected, 2u);
  EXPECT_EQ(stats.absorbed, 2u);
  EXPECT_EQ(stats.absorbed_and_detected, 1u);
  EXPECT_EQ(stats.silent_corruptions(), 1u);
}
