// Batched fault-tolerant serving: KvCache tiling, efta_decode_batch
// batch-vs-serial bit-identity, fault campaigns through the batched path,
// and the DecodeEngine submit/step/drain front-end.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/decode.hpp"
#include "fault/campaign.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

/// Fill a cache with `tokens` seeded-random tokens; returns nothing, the
/// cache owns the data.
void fill_cache(fs::KvCache& cache, std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = cache.heads() * cache.dim();
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
  }
}

std::vector<Half> random_query(std::size_t d, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> q(d);
  for (auto& x : q) x = Half(dist(rng));
  return q;
}

}  // namespace

TEST(FtReport, MergeAccumulatesAllCounters) {
  fa::FtReport a, b;
  a.gemm1.checks = 3;
  a.gemm1.corrected = 1;
  a.exp_check.recomputed = 2;
  a.dmr_recomputes = 5;
  a.faults_injected = 1;
  b.gemm1.checks = 4;
  b.gemm1.checksum_repairs = 2;
  b.gemm2.flagged = 1;
  b.range_corrections = 3;
  b.faults_injected = 2;

  fa::FtReport sum = a + b;
  EXPECT_EQ(sum.gemm1.checks, 7u);
  EXPECT_EQ(sum.gemm1.corrected, 1u);
  EXPECT_EQ(sum.gemm1.checksum_repairs, 2u);
  EXPECT_EQ(sum.exp_check.recomputed, 2u);
  EXPECT_EQ(sum.gemm2.flagged, 1u);
  EXPECT_EQ(sum.dmr_recomputes, 5u);
  EXPECT_EQ(sum.range_corrections, 3u);
  EXPECT_EQ(sum.faults_injected, 3u);

  a += b;
  EXPECT_EQ(a.gemm1.checks, sum.gemm1.checks);
  EXPECT_EQ(a.total_corrected(), sum.total_corrected());
  EXPECT_EQ(a.total_detected(), sum.total_detected());
}

TEST(KvCache, GrowsInAlignedTilesWithStableStorage) {
  fs::KvCache cache(2, 32);
  EXPECT_EQ(cache.length(), 0u);
  EXPECT_EQ(cache.tiles(), 0u);

  fill_cache(cache, 1, 1);
  EXPECT_EQ(cache.length(), 1u);
  EXPECT_EQ(cache.tiles(), 1u);
  const fc::KvSlice first = cache.slice(0);
  const Half* tile0_k = first.k_tiles[0];
  const float k000 = tile0_k[0].to_float();

  // Appending across a tile boundary must not relocate tile 0's rows.
  fill_cache(cache, 130, 2);
  EXPECT_EQ(cache.length(), 131u);
  EXPECT_EQ(cache.tiles(), 3u);
  const fc::KvSlice after = cache.slice(0);
  EXPECT_EQ(after.k_tiles[0], tile0_k);
  EXPECT_EQ(tile0_k[0].to_float(), k000);
  EXPECT_EQ(after.n, 131u);
  EXPECT_EQ(after.tiles(), 3u);

  // Rows past the valid count of the tail tile are zero-initialized — the
  // padding convention the ragged-tail checksums assume.
  const std::size_t tail_rows = 131u - 2u * 64u;
  const Half* tail = after.k_tiles[2];
  for (std::size_t r = tail_rows; r < fs::KvCache::kTileRows; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_EQ(tail[r * 32 + c].bits(), 0u);
    }
  }
}

TEST(Serve, BatchedDecodeBitIdenticalToSerialLoop) {
  // Heterogeneous context lengths, including ragged tails.
  const std::size_t lengths[] = {33, 64, 100, 127, 1};
  constexpr std::size_t kHeads = 2, kDim = 32;
  std::vector<fs::KvCache> caches;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 1000 + i);
  }

  const std::size_t items_n = caches.size() * kHeads;
  std::vector<std::vector<Half>> queries;
  std::vector<std::vector<float>> batch_out(items_n,
                                            std::vector<float>(kDim));
  std::vector<fc::DecodeWorkItem> items;
  for (std::size_t r = 0; r < caches.size(); ++r) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      queries.push_back(random_query(kDim, 2000 + r * kHeads + h));
    }
  }
  for (std::size_t r = 0; r < caches.size(); ++r) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      const std::size_t i = r * kHeads + h;
      items.push_back(
          fc::DecodeWorkItem{caches[r].slice(h), queries[i], batch_out[i]});
    }
  }

  std::vector<fa::FtReport> per_item(items_n);
  const fa::FtReport agg = fc::efta_decode_batch(items, {}, nullptr, per_item);

  // Clean batch: every checksum comparison must pass (no false corrections).
  EXPECT_GT(agg.gemm1.checks, 0u);
  EXPECT_EQ(agg.total_detected(), 0u);
  EXPECT_EQ(agg.total_corrected(), 0u);

  fa::FtReport merged;
  for (std::size_t i = 0; i < items_n; ++i) {
    std::vector<float> serial_out(kDim);
    const std::size_t r = i / kHeads, h = i % kHeads;
    const fa::FtReport rep = fc::efta_decode_step(caches[r].slice(h),
                                                  queries[i], serial_out);
    for (std::size_t c = 0; c < kDim; ++c) {
      EXPECT_EQ(batch_out[i][c], serial_out[c]) << "item " << i << " c " << c;
    }
    EXPECT_EQ(per_item[i].gemm1.checks, rep.gemm1.checks);
    EXPECT_EQ(per_item[i].exp_check.checks, rep.exp_check.checks);
    merged += per_item[i];
  }
  EXPECT_EQ(agg.gemm1.checks, merged.gemm1.checks);
  EXPECT_EQ(agg.exp_check.checks, merged.exp_check.checks);
  EXPECT_EQ(agg.gemm2.checks, merged.gemm2.checks);
}

TEST(Serve, UnarmedProbeCountsCallsThroughBatch) {
  // Campaign sizing: a null-op injector threaded through the batch path
  // must still observe the per-site call counts.
  fs::KvCache cache(1, 64);
  fill_cache(cache, 100, 9);
  const auto q = random_query(64, 10);
  std::vector<float> out(64);
  std::vector<fc::DecodeWorkItem> items{
      fc::DecodeWorkItem{cache.slice(0), q, out}};
  ff::FaultInjector probe;
  fc::efta_decode_batch(items, {}, &probe);
  EXPECT_EQ(probe.calls(ff::Site::kGemm1), 100u);  // one hook per valid lane
  EXPECT_GT(probe.calls(ff::Site::kExp), 0u);
  EXPECT_EQ(probe.injected(), 0u);
}

TEST(Serve, BatchFaultCampaignStillCorrects) {
  const std::size_t lengths[] = {100, 65};
  constexpr std::size_t kHeads = 1, kDim = 64;
  std::vector<fs::KvCache> caches;
  std::vector<std::vector<Half>> queries;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 3000 + i);
    queries.push_back(random_query(kDim, 3100 + i));
  }

  auto run_batch = [&](std::vector<std::vector<float>>& out,
                       ff::FaultInjector* inj) {
    std::vector<fc::DecodeWorkItem> items;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      items.push_back(
          fc::DecodeWorkItem{caches[r].slice(0), queries[r], out[r]});
    }
    return fc::efta_decode_batch(items, {}, inj);
  };

  std::vector<std::vector<float>> clean(caches.size(),
                                        std::vector<float>(kDim));
  run_batch(clean, nullptr);

  auto trial = [&](ff::FaultInjector& inj) -> ff::TrialResult {
    std::vector<std::vector<float>> out(caches.size(),
                                        std::vector<float>(kDim));
    const fa::FtReport rep = run_batch(out, &inj);
    float dev = 0.0f;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t c = 0; c < kDim; ++c) {
        const float d = std::fabs(out[r][c] - clean[r][c]);
        dev = std::isfinite(d) ? std::max(dev, d) : 1e30f;
      }
    }
    return {dev, rep.total_detected() > 0};
  };

  // Checksum-protected sites have exact correction paths: every injected
  // flip must be repaired (or be numerically negligible).
  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kGemm1, ff::Site::kExp, ff::Site::kGemm2};
  cfg.call_offsets = {0, 40, 90, 130};
  cfg.bits = {30, 24, 20};
  const ff::CampaignStats stats = ff::run_campaign(cfg, trial);
  EXPECT_GT(stats.injected, 0u);
  EXPECT_GT(stats.detected, 0u);
  EXPECT_GE(stats.absorption_rate(), 0.95);
  EXPECT_LT(stats.worst_deviation, 5e-2f);

  // The rowsum is range-restricted, not checksummed (paper Case 3): the
  // SNVR replacement value is an approximation, so the guarantee is a
  // finite, bounded output — and detection whenever the flip leaves the
  // theoretical range — not bit recovery.
  ff::CampaignConfig rs;
  rs.sites = {ff::Site::kReduceSum};
  rs.call_offsets = {0, 1, 2};
  rs.bits = {30, 24, 20};
  const ff::CampaignStats rstats = ff::run_campaign(rs, trial);
  EXPECT_GT(rstats.injected, 0u);
  EXPECT_LT(rstats.worst_deviation, 1e2f);  // never NaN/Inf/unbounded
}

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;  // decode == causal attention over the prefix
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

}  // namespace

TEST(Engine, BatchedStepBitIdenticalToSingleRequestEngines) {
  const fx::Model model(serving_config(), 0xabc);
  const std::size_t hidden = model.config().hidden;
  const std::size_t prompt_lens[] = {5, 12, 33};

  fs::DecodeEngine batched(model);
  std::vector<fs::DecodeEngine::RequestId> ids;
  std::vector<ft::MatrixF> prompts;
  for (std::size_t i = 0; i < std::size(prompt_lens); ++i) {
    prompts.push_back(random_prompt(prompt_lens[i], hidden, 7000 + i));
    ids.push_back(batched.submit(prompts.back()));
  }
  EXPECT_EQ(batched.active(), 3u);
  // Prefill work is observable: its ABFT stats land in lifetime().
  EXPECT_EQ(batched.lifetime().active, 5u + 12u + 33u);
  EXPECT_GT(batched.lifetime().linear.checks, 0u);
  const auto stats = batched.drain(4);
  EXPECT_EQ(stats.active, 12u);  // 3 sequences x 4 token-steps
  EXPECT_GT(stats.attention.gemm1.checks, 0u);
  EXPECT_GT(stats.linear.checks, 0u);
  EXPECT_EQ(stats.attention.total_detected(), 0u);

  for (std::size_t i = 0; i < prompts.size(); ++i) {
    fs::DecodeEngine solo(model);
    const auto id = solo.submit(prompts[i]);
    solo.drain(4);
    EXPECT_EQ(batched.context_length(ids[i]), prompt_lens[i] + 4);
    const auto hb = batched.hidden(ids[i]);
    const auto hs = solo.hidden(id);
    ASSERT_EQ(hb.size(), hs.size());
    for (std::size_t c = 0; c < hb.size(); ++c) {
      EXPECT_EQ(hb[c], hs[c]) << "request " << i << " c " << c;
    }
  }
}

TEST(Engine, CacheBackedGenerationMatchesFullRecompute) {
  const fx::Model model(serving_config(), 0xdef);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.record_inputs = true;  // keep the replay history this test compares
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(random_prompt(40, hidden, 0xfeed));
  engine.drain(24);  // total context 64: a full efta_attention block
  ASSERT_EQ(engine.context_length(id), 64u);

  // A from-scratch protected forward over exactly the rows the engine fed
  // must land on the same final hidden state (the KV cache only avoids
  // recomputation, never changes the math beyond summation order).
  ft::MatrixF x = engine.fed_inputs(id);
  ASSERT_EQ(x.rows(), 64u);
  model.forward(x, fx::AttentionKind::kEfta, /*protect_linear=*/true);
  const auto h = engine.hidden(id);
  for (std::size_t c = 0; c < hidden; ++c) {
    EXPECT_NEAR(h[c], x(x.rows() - 1, c), 5e-3f) << c;
  }
}

TEST(Engine, CorrectsInjectedFaultDuringDecode) {
  const fx::Model model(serving_config(), 0x123);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(20, hidden, 0xbeef);

  fs::DecodeEngine clean_engine(model);
  const auto cid = clean_engine.submit(prompt);
  clean_engine.drain(3);

  fs::DecodeEngine faulty_engine(model);
  const auto fid = faulty_engine.submit(prompt);
  faulty_engine.drain(2);
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 7, 30);
  const auto stats = faulty_engine.step(&inj);
  EXPECT_EQ(stats.attention.faults_injected, 1u);
  EXPECT_GE(stats.attention.total_detected(), 1u);
  EXPECT_GE(faulty_engine.report(fid).total_detected(), 1u);

  const auto hc = clean_engine.hidden(cid);
  const auto hf = faulty_engine.hidden(fid);
  for (std::size_t c = 0; c < hidden; ++c) {
    EXPECT_NEAR(hf[c], hc[c], 1e-2f) << c;
  }
}

TEST(Engine, FinishReleasesRequest) {
  const fx::Model model(serving_config(), 0x321);
  fs::DecodeEngine engine(model);
  const auto a = engine.submit(random_prompt(8, model.config().hidden, 1));
  const auto b = engine.submit(random_prompt(16, model.config().hidden, 2));
  EXPECT_EQ(engine.active(), 2u);

  engine.finish(a);
  EXPECT_FALSE(engine.is_active(a));
  EXPECT_EQ(engine.active(), 1u);
  EXPECT_EQ(engine.context_length(a), 8u);  // history survives retirement

  const auto stats = engine.step();
  EXPECT_EQ(stats.active, 1u);  // only b advanced
  EXPECT_EQ(engine.context_length(b), 17u);
  EXPECT_EQ(engine.fed_inputs(a).rows(), 0u);  // history freed on retirement
  EXPECT_FALSE(engine.hidden(a).empty());      // last hidden stays readable
  EXPECT_THROW((void)engine.hidden(99), std::out_of_range);
}

TEST(Engine, RejectsMisalignedStrideAtConstruction) {
  const fx::Model model(serving_config(), 0x55);
  fs::EngineOptions opt;
  opt.efta.stride = 3;  // head_dim 64 is not a multiple of 3
  EXPECT_THROW(fs::DecodeEngine(model, opt), std::invalid_argument);
}

TEST(Engine, RetiresCappedRequestWithoutStallingTheBatch) {
  const fx::Model model(serving_config(), 0x77);
  fs::EngineOptions opt;
  opt.max_context = 12;
  fs::DecodeEngine engine(model, opt);
  const auto a = engine.submit(random_prompt(10, model.config().hidden, 4));
  const auto b = engine.submit(random_prompt(4, model.config().hidden, 5));

  // a caps out after 2 generated tokens; b keeps going.
  const auto stats = engine.drain(5);
  EXPECT_EQ(stats.active, 2u + 5u);
  EXPECT_FALSE(engine.is_active(a));
  EXPECT_TRUE(engine.is_active(b));
  EXPECT_EQ(engine.context_length(a), 12u);
  EXPECT_EQ(engine.context_length(b), 9u);
  EXPECT_FALSE(engine.hidden(a).empty());

  // Prompts beyond the cap are rejected outright.
  EXPECT_THROW(engine.submit(random_prompt(13, model.config().hidden, 6)),
               std::invalid_argument);
}
