// Batched fault-tolerant serving: KvCache tiling, efta_decode_batch
// batch-vs-serial bit-identity, fault campaigns through the batched path,
// and the DecodeEngine submit/step/drain front-end.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "core/decode.hpp"
#include "fault/campaign.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "tensor/random.hpp"
#include "transformer/model.hpp"

namespace fa = ftt::attention;
namespace fc = ftt::core;
namespace ff = ftt::fault;
namespace fs = ftt::serve;
namespace ft = ftt::tensor;
namespace fx = ftt::transformer;
using ftt::numeric::Half;

namespace {

/// Fill a cache with `tokens` seeded-random tokens; returns nothing, the
/// cache owns the data.
void fill_cache(fs::KvCache& cache, std::size_t tokens, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  const std::size_t w = cache.heads() * cache.dim();
  std::vector<Half> k(w), v(w);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t i = 0; i < w; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
  }
}

std::vector<Half> random_query(std::size_t d, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> q(d);
  for (auto& x : q) x = Half(dist(rng));
  return q;
}

}  // namespace

TEST(FtReport, MergeAccumulatesAllCounters) {
  fa::FtReport a, b;
  a.gemm1.checks = 3;
  a.gemm1.corrected = 1;
  a.exp_check.recomputed = 2;
  a.dmr_recomputes = 5;
  a.faults_injected = 1;
  b.gemm1.checks = 4;
  b.gemm1.checksum_repairs = 2;
  b.gemm2.flagged = 1;
  b.range_corrections = 3;
  b.faults_injected = 2;

  fa::FtReport sum = a + b;
  EXPECT_EQ(sum.gemm1.checks, 7u);
  EXPECT_EQ(sum.gemm1.corrected, 1u);
  EXPECT_EQ(sum.gemm1.checksum_repairs, 2u);
  EXPECT_EQ(sum.exp_check.recomputed, 2u);
  EXPECT_EQ(sum.gemm2.flagged, 1u);
  EXPECT_EQ(sum.dmr_recomputes, 5u);
  EXPECT_EQ(sum.range_corrections, 3u);
  EXPECT_EQ(sum.faults_injected, 3u);

  a += b;
  EXPECT_EQ(a.gemm1.checks, sum.gemm1.checks);
  EXPECT_EQ(a.total_corrected(), sum.total_corrected());
  EXPECT_EQ(a.total_detected(), sum.total_detected());
}

TEST(KvCache, GrowsInAlignedTilesWithStableStorage) {
  fs::KvCache cache(2, 32);
  EXPECT_EQ(cache.length(), 0u);
  EXPECT_EQ(cache.tiles(), 0u);

  fill_cache(cache, 1, 1);
  EXPECT_EQ(cache.length(), 1u);
  EXPECT_EQ(cache.tiles(), 1u);
  const fc::KvSlice first = cache.slice(0);
  const Half* tile0_k = first.k_tiles[0];
  const float k000 = tile0_k[0].to_float();

  // Appending across a tile boundary must not relocate tile 0's rows.
  fill_cache(cache, 130, 2);
  EXPECT_EQ(cache.length(), 131u);
  EXPECT_EQ(cache.tiles(), 3u);
  const fc::KvSlice after = cache.slice(0);
  EXPECT_EQ(after.k_tiles[0], tile0_k);
  EXPECT_EQ(tile0_k[0].to_float(), k000);
  EXPECT_EQ(after.n, 131u);
  EXPECT_EQ(after.tiles(), 3u);

  // Rows past the valid count of the tail tile are zero-initialized — the
  // padding convention the ragged-tail checksums assume.
  const std::size_t tail_rows = 131u - 2u * 64u;
  const Half* tail = after.k_tiles[2];
  for (std::size_t r = tail_rows; r < fs::KvCache::kTileRows; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_EQ(tail[r * 32 + c].bits(), 0u);
    }
  }
}

TEST(KvCache, SealsEncodingsOncePerFullTile) {
  fs::KvCache cache(2, 32);
  EXPECT_EQ(cache.enc_stride(), 8);
  fill_cache(cache, 63, 11);
  {
    const fc::KvSlice sl = cache.slice(0);
    ASSERT_NE(sl.k_c1, nullptr);
    EXPECT_EQ(sl.enc_stride, 8);
    EXPECT_EQ(sl.k_c1[0], nullptr);  // tail tile: not sealed yet
  }
  fill_cache(cache, 68, 12);  // 131 tokens: tiles 0 and 1 sealed, tail open
  const fc::KvSlice sl = cache.slice(1);
  ASSERT_EQ(sl.tiles(), 3u);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_NE(sl.k_c1[t], nullptr) << t;
    EXPECT_NE(sl.k_c2[t], nullptr) << t;
    EXPECT_NE(sl.v_c1[t], nullptr) << t;
    EXPECT_NE(sl.v_c2[t], nullptr) << t;
  }
  EXPECT_EQ(sl.k_c1[2], nullptr);
  EXPECT_EQ(sl.v_c2[2], nullptr);

  // Sealed encodings are immutable: appending more tokens must not touch
  // tile 0's encoding storage (pointers stay put, like the tiles).
  const Half* enc0 = sl.k_c1[0];
  fill_cache(cache, 70, 13);
  EXPECT_EQ(cache.slice(1).k_c1[0], enc0);

  // A stride that cannot tile the footprint (or an explicit 0) disables
  // memoization instead of rejecting the cache; decode still works via the
  // fresh-encode fallback.
  fs::KvCache nomemo(1, 32, 5);
  EXPECT_EQ(nomemo.enc_stride(), 0);
  fill_cache(nomemo, 70, 14);
  EXPECT_EQ(nomemo.slice(0).enc_stride, 0);
  EXPECT_EQ(nomemo.slice(0).k_c1[0], nullptr);
  const auto q = random_query(32, 15);
  std::vector<float> out(32);
  fc::efta_decode_step(nomemo.slice(0), q, out, fc::EftaOptions{});
  EXPECT_EQ(fs::KvCache(1, 32, 0).enc_stride(), 0);
}

TEST(KvCache, SealAllocationFailureDegradesToFreshEncodes) {
  // The seal_tiles allocation-failure fallback, exercised through the
  // injectable hook: when an encoding-block allocation fails mid-seal, the
  // append must still succeed, the affected entries stay null, and decode
  // falls back to fresh per-call encodes with bit-identical results.
  constexpr std::size_t kHeads = 2, kDim = 64;
  fs::KvCache cache(kHeads, kDim);
  ft::MatrixH K(128, kDim), V(128, kDim);  // head-0 mirror for the reference
  std::mt19937_64 rng(0xfa11);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<Half> k(kHeads * kDim), v(kHeads * kDim);
  auto append_one = [&](std::size_t t) {
    for (std::size_t i = 0; i < kHeads * kDim; ++i) {
      k[i] = Half(dist(rng));
      v[i] = Half(dist(rng));
    }
    cache.append(k, v);
    for (std::size_t c = 0; c < kDim; ++c) {
      K(t, c) = k[c];
      V(t, c) = v[c];
    }
  };

  for (std::size_t t = 0; t < 63; ++t) append_one(t);  // no seal yet
  const std::size_t bytes_before_seal = cache.bytes();
  // Arm the hook: the next enc-block allocation throws bad_alloc, aborting
  // tile 0's seal — its entries stay null for every head.
  fs::testing::seal_alloc_failures() = 1;
  append_one(63);  // crosses the tile boundary: seal attempted, fails
  EXPECT_EQ(fs::testing::seal_alloc_failures(), 0u);  // hook fired
  EXPECT_EQ(cache.length(), 64u);  // the append itself committed
  EXPECT_EQ(cache.slice(0).k_c1[0], nullptr);
  EXPECT_EQ(cache.slice(1).k_c1[0], nullptr);
  // bytes() must not charge for blocks the failed seal never allocated.
  EXPECT_EQ(cache.bytes(), bytes_before_seal);

  // Null entries degrade to fresh per-call encodes — never wrong results:
  // bit-identical to the contiguous-cache overload that always encodes.
  const auto q = random_query(kDim, 0xfa12);
  std::vector<float> out_cache(kDim), out_ref(kDim);
  {
    ft::MatrixH K64(64, kDim), V64(64, kDim);
    for (std::size_t t = 0; t < 64; ++t) {
      for (std::size_t c = 0; c < kDim; ++c) {
        K64(t, c) = K(t, c);
        V64(t, c) = V(t, c);
      }
    }
    fc::efta_decode_step(cache.slice(0), q, out_cache);
    fc::efta_decode_step(K64, V64, q, out_ref);
    for (std::size_t c = 0; c < kDim; ++c) {
      EXPECT_EQ(out_cache[c], out_ref[c]) << c;
    }
  }

  // With the hook disarmed, later tiles seal normally — the failure is not
  // sticky — and mixed null/sealed tiles still decode bit-identically.
  for (std::size_t t = 64; t < 128; ++t) append_one(t);
  EXPECT_EQ(cache.slice(0).k_c1[0], nullptr);   // tile 0 stays unsealed
  EXPECT_NE(cache.slice(0).k_c1[1], nullptr);   // tile 1 sealed normally
  EXPECT_NE(cache.slice(1).v_c2[1], nullptr);
  fc::efta_decode_step(cache.slice(0), q, out_cache);
  fc::efta_decode_step(K, V, q, out_ref);
  for (std::size_t c = 0; c < kDim; ++c) {
    EXPECT_EQ(out_cache[c], out_ref[c]) << c;
  }
}

TEST(Serve, FullTileReadsAreZeroCopy) {
  // The kernel materializes (pads-and-copies) only the ragged tail tile;
  // full tiles are consumed in place.  core::testing::tiles_materialized()
  // counts materializations on this thread, and efta_decode_step runs the
  // slice serially on the calling thread.
  constexpr std::size_t kDim = 64;
  const auto q = random_query(kDim, 21);
  std::vector<float> out(kDim);
  std::size_t& count = fc::testing::tiles_materialized();

  fs::KvCache ragged(1, kDim);
  fill_cache(ragged, 130, 22);  // 2 full tiles + 2-row tail
  std::size_t before = count;
  fc::efta_decode_step(ragged.slice(0), q, out);
  EXPECT_EQ(count - before, 1u);  // only the tail tile was materialized

  fs::KvCache aligned(1, kDim);
  fill_cache(aligned, 128, 23);  // 2 full tiles, no tail
  before = count;
  fc::efta_decode_step(aligned.slice(0), q, out);
  EXPECT_EQ(count - before, 0u);  // fully zero-copy
}

TEST(Serve, BatchedDecodeBitIdenticalToSerialLoop) {
  // Heterogeneous context lengths, including ragged tails.
  const std::size_t lengths[] = {33, 64, 100, 127, 1};
  constexpr std::size_t kHeads = 2, kDim = 32;
  std::vector<fs::KvCache> caches;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 1000 + i);
  }

  const std::size_t items_n = caches.size() * kHeads;
  std::vector<std::vector<Half>> queries;
  std::vector<std::vector<float>> batch_out(items_n,
                                            std::vector<float>(kDim));
  std::vector<fc::DecodeWorkItem> items;
  for (std::size_t r = 0; r < caches.size(); ++r) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      queries.push_back(random_query(kDim, 2000 + r * kHeads + h));
    }
  }
  for (std::size_t r = 0; r < caches.size(); ++r) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      const std::size_t i = r * kHeads + h;
      items.push_back(fc::DecodeWorkItem{caches[r].slice(h),
                                         queries[i].data(),
                                         batch_out[i].data()});
    }
  }

  std::vector<fa::FtReport> per_item(items_n);
  const fa::FtReport agg = fc::efta_decode_batch(items, {}, nullptr, per_item);

  // Clean batch: essentially every checksum comparison passes.  Per-token
  // (chunk = 1) runs verify at tiny norms where the relative threshold can
  // trip on rounding noise; such flags are self-healing, so the bound is a
  // tiny rate, never an exact zero.
  EXPECT_GT(agg.gemm1.checks, 0u);
  const std::size_t slack = agg.gemm1.checks / 1000 + 2;
  EXPECT_LE(agg.total_detected(), slack);
  EXPECT_LE(agg.total_corrected(), slack);

  fa::FtReport merged;
  for (std::size_t i = 0; i < items_n; ++i) {
    std::vector<float> serial_out(kDim);
    const std::size_t r = i / kHeads, h = i % kHeads;
    const fa::FtReport rep = fc::efta_decode_step(caches[r].slice(h),
                                                  queries[i], serial_out);
    for (std::size_t c = 0; c < kDim; ++c) {
      EXPECT_EQ(batch_out[i][c], serial_out[c]) << "item " << i << " c " << c;
    }
    EXPECT_EQ(per_item[i].gemm1.checks, rep.gemm1.checks);
    EXPECT_EQ(per_item[i].exp_check.checks, rep.exp_check.checks);
    merged += per_item[i];
  }
  EXPECT_EQ(agg.gemm1.checks, merged.gemm1.checks);
  EXPECT_EQ(agg.exp_check.checks, merged.exp_check.checks);
  EXPECT_EQ(agg.gemm2.checks, merged.gemm2.checks);
}

TEST(Serve, UnarmedProbeCountsCallsThroughBatch) {
  // Campaign sizing: a null-op injector threaded through the batch path
  // must still observe the per-site call counts.
  fs::KvCache cache(1, 64);
  fill_cache(cache, 100, 9);
  const auto q = random_query(64, 10);
  std::vector<float> out(64);
  std::vector<fc::DecodeWorkItem> items{
      fc::DecodeWorkItem{cache.slice(0), q.data(), out.data()}};
  ff::FaultInjector probe;
  fc::efta_decode_batch(items, {}, &probe);
  EXPECT_EQ(probe.calls(ff::Site::kGemm1), 100u);  // one hook per valid lane
  EXPECT_GT(probe.calls(ff::Site::kExp), 0u);
  EXPECT_EQ(probe.injected(), 0u);
}

TEST(Serve, BatchFaultCampaignStillCorrects) {
  const std::size_t lengths[] = {100, 65};
  constexpr std::size_t kHeads = 1, kDim = 64;
  std::vector<fs::KvCache> caches;
  std::vector<std::vector<Half>> queries;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    caches.emplace_back(kHeads, kDim);
    fill_cache(caches.back(), lengths[i], 3000 + i);
    queries.push_back(random_query(kDim, 3100 + i));
  }

  auto run_batch = [&](std::vector<std::vector<float>>& out,
                       ff::FaultInjector* inj) {
    std::vector<fc::DecodeWorkItem> items;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      items.push_back(fc::DecodeWorkItem{caches[r].slice(0),
                                         queries[r].data(), out[r].data()});
    }
    return fc::efta_decode_batch(items, {}, inj);
  };

  std::vector<std::vector<float>> clean(caches.size(),
                                        std::vector<float>(kDim));
  run_batch(clean, nullptr);

  auto trial = [&](ff::FaultInjector& inj) -> ff::TrialResult {
    std::vector<std::vector<float>> out(caches.size(),
                                        std::vector<float>(kDim));
    const fa::FtReport rep = run_batch(out, &inj);
    float dev = 0.0f;
    for (std::size_t r = 0; r < caches.size(); ++r) {
      for (std::size_t c = 0; c < kDim; ++c) {
        const float d = std::fabs(out[r][c] - clean[r][c]);
        dev = std::isfinite(d) ? std::max(dev, d) : 1e30f;
      }
    }
    return {dev, rep.total_detected() > 0};
  };

  // Checksum-protected sites have exact correction paths: every injected
  // flip must be repaired (or be numerically negligible).
  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kGemm1, ff::Site::kExp, ff::Site::kGemm2};
  cfg.call_offsets = {0, 40, 90, 130};
  cfg.bits = {30, 24, 20};
  const ff::CampaignStats stats = ff::run_campaign(cfg, trial);
  EXPECT_GT(stats.injected, 0u);
  EXPECT_GT(stats.detected, 0u);
  EXPECT_GE(stats.absorption_rate(), 0.95);
  EXPECT_LT(stats.worst_deviation, 5e-2f);

  // The rowsum is range-restricted, not checksummed (paper Case 3): the
  // SNVR replacement value is an approximation, so the guarantee is a
  // finite, bounded output — and detection whenever the flip leaves the
  // theoretical range — not bit recovery.
  ff::CampaignConfig rs;
  rs.sites = {ff::Site::kReduceSum};
  rs.call_offsets = {0, 1, 2};
  rs.bits = {30, 24, 20};
  const ff::CampaignStats rstats = ff::run_campaign(rs, trial);
  EXPECT_GT(rstats.injected, 0u);
  EXPECT_LT(rstats.worst_deviation, 1e2f);  // never NaN/Inf/unbounded
}

// ---------------------------------------------------------------------------
// Chunked causal prefill: the kernel must be bit-identical, row for row, to
// feeding the same tokens one at a time through efta_decode_step.
// ---------------------------------------------------------------------------

namespace {

struct TokenStream {
  std::vector<Half> k, v, q;  // tokens x dim each (single head)
  std::size_t dim;

  TokenStream(std::size_t tokens, std::size_t d, std::uint64_t seed)
      : k(tokens * d), v(tokens * d), q(tokens * d), dim(d) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (auto& x : k) x = Half(dist(rng));
    for (auto& x : v) x = Half(dist(rng));
    for (auto& x : q) x = Half(dist(rng));
  }

  [[nodiscard]] std::span<const Half> row(const std::vector<Half>& m,
                                          std::size_t t) const {
    return {m.data() + t * dim, dim};
  }
};

}  // namespace

TEST(Serve, MemoizedEncodingsBitIdenticalToFreshEncode) {
  // A KvCache-backed decode consumes sealed per-tile encodings; the
  // contiguous-cache overload re-encodes every tile per call.  The two must
  // agree bit for bit — the memo is the same computation, done once.
  constexpr std::size_t kDim = 64, kN = 197;  // 3 full tiles + ragged tail
  const TokenStream ts(kN, kDim, 0xeca1);
  fs::KvCache cache(1, kDim);
  ft::MatrixH K(kN, kDim), V(kN, kDim);
  for (std::size_t t = 0; t < kN; ++t) {
    cache.append(ts.row(ts.k, t), ts.row(ts.v, t));
    for (std::size_t c = 0; c < kDim; ++c) {
      K(t, c) = ts.k[t * kDim + c];
      V(t, c) = ts.v[t * kDim + c];
    }
  }
  const auto q = ts.row(ts.q, 0);
  std::vector<float> out_memo(kDim), out_fresh(kDim);
  const fa::FtReport rep_memo =
      fc::efta_decode_step(cache.slice(0), q, out_memo);
  const fa::FtReport rep_fresh = fc::efta_decode_step(K, V, q, out_fresh);
  for (std::size_t c = 0; c < kDim; ++c) {
    EXPECT_EQ(out_memo[c], out_fresh[c]) << c;
  }
  EXPECT_EQ(rep_memo.gemm1.checks, rep_fresh.gemm1.checks);
  EXPECT_EQ(rep_memo.exp_check.checks, rep_fresh.exp_check.checks);
  EXPECT_EQ(rep_memo.gemm2.checks, rep_fresh.gemm2.checks);

  // A stride mismatch (kernel stride != memo stride) must fall back to
  // fresh encodes, not consume incompatible encodings.
  fc::EftaOptions wide;
  wide.stride = 16;
  std::vector<float> memo16(kDim), fresh16(kDim);
  fc::efta_decode_step(cache.slice(0), q, memo16, wide);
  fc::efta_decode_step(K, V, q, fresh16, wide);
  for (std::size_t c = 0; c < kDim; ++c) {
    EXPECT_EQ(memo16[c], fresh16[c]) << c;
  }
}

TEST(KvCache, AppendChunkMatchesPerTokenAppend) {
  constexpr std::size_t kHeads = 2, kDim = 32, kTokens = 130;
  const TokenStream ts(kTokens, kHeads * kDim, 41);

  fs::KvCache per_token(kHeads, kDim), chunked(kHeads, kDim);
  for (std::size_t t = 0; t < kTokens; ++t) {
    per_token.append(ts.row(ts.k, t), ts.row(ts.v, t));
  }
  const std::size_t chunks[] = {64, 50, 16};  // 130 rows, ragged tail tile
  std::size_t base = 0;
  for (const std::size_t rows : chunks) {
    chunked.append_chunk({ts.k.data() + base * kHeads * kDim,
                          rows * kHeads * kDim},
                         {ts.v.data() + base * kHeads * kDim,
                          rows * kHeads * kDim},
                         rows);
    base += rows;
  }

  ASSERT_EQ(per_token.length(), chunked.length());
  ASSERT_EQ(per_token.tiles(), chunked.tiles());
  for (std::size_t h = 0; h < kHeads; ++h) {
    const fc::KvSlice a = per_token.slice(h), b = chunked.slice(h);
    for (std::size_t j = 0; j < a.tiles(); ++j) {
      for (std::size_t i = 0; i < fs::KvCache::kTileRows * kDim; ++i) {
        ASSERT_EQ(a.k_tiles[j][i].bits(), b.k_tiles[j][i].bits());
        ASSERT_EQ(a.v_tiles[j][i].bits(), b.v_tiles[j][i].bits());
      }
    }
  }
}

TEST(Prefill, ChunkBitIdenticalToTokenByTokenDecode) {
  constexpr std::size_t kDim = 32, kTokens = 150;
  const TokenStream ts(kTokens, kDim, 0xc0ffee);

  // Reference: grow the cache token by token; each token's attention over
  // its own prefix is one protected decode step.
  std::vector<float> ref(kTokens * kDim);
  fs::KvCache cache_ref(1, kDim);
  fa::FtReport ref_rep;
  for (std::size_t t = 0; t < kTokens; ++t) {
    cache_ref.append(ts.row(ts.k, t), ts.row(ts.v, t));
    ref_rep += fc::efta_decode_step(cache_ref.slice(0), ts.row(ts.q, t),
                                    {ref.data() + t * kDim, kDim});
  }
  // Token-by-token (chunk = 1) verification: allow rare threshold noise.
  EXPECT_LE(ref_rep.total_detected(), ref_rep.gemm1.checks / 1000 + 2);

  // Chunked prefill over the same tokens, both tile-aligned chunks (the
  // production schedule) and deliberately misaligned ones (chunks spanning
  // tile boundaries).
  const std::vector<std::vector<std::size_t>> schedules = {
      {64, 64, 22}, {30, 50, 40, 30}, {1, 63, 64, 21, 1}};
  for (const auto& schedule : schedules) {
    fs::KvCache cache(1, kDim);
    std::vector<float> out(kTokens * kDim, 0.0f);
    fa::FtReport rep;
    std::size_t base = 0;
    for (const std::size_t rows : schedule) {
      cache.append_chunk({ts.k.data() + base * kDim, rows * kDim},
                         {ts.v.data() + base * kDim, rows * kDim}, rows);
      rep += fc::efta_decode_block(fc::DecodeWorkItem{
          cache.slice(0), ts.q.data() + base * kDim,
          out.data() + base * kDim, rows, 0, 0});
      base += rows;
    }
    ASSERT_EQ(base, kTokens);
    // Schedules include 1-row chunks (the per-token path): a tiny rate of
    // marginal flags is threshold noise, not a dirty run.
    EXPECT_LE(rep.total_detected(), rep.gemm1.checks / 1000 + 2)
        << "clean chunks must verify (essentially) clean";
    for (std::size_t i = 0; i < kTokens * kDim; ++i) {
      ASSERT_EQ(out[i], ref[i]) << "schedule[0]=" << schedule[0] << " i=" << i;
    }
  }
}

TEST(Prefill, BatchMatchesSerialChunksAndHandlesEmpty) {
  // Empty batch: zeroed report, no OpenMP region (the idle-tick guarantee).
  const fa::FtReport empty_decode = fc::efta_decode_batch({});
  EXPECT_EQ(empty_decode.gemm1.checks, 0u);
  EXPECT_EQ(empty_decode.total_detected(), 0u);

  constexpr std::size_t kDim = 64, kTokens = 100;
  const TokenStream a(kTokens, kDim, 7), b(70, kDim, 8);
  fs::KvCache ca(1, kDim), cb(1, kDim);
  ca.append_chunk({a.k.data(), 64 * kDim}, {a.v.data(), 64 * kDim}, 64);
  cb.append_chunk({b.k.data(), 64 * kDim}, {b.v.data(), 64 * kDim}, 64);
  std::vector<float> out_batch(2 * 64 * kDim), out_serial(2 * 64 * kDim);
  std::vector<fc::DecodeWorkItem> items{
      fc::DecodeWorkItem{ca.slice(0), a.q.data(), out_batch.data(), 64, 0, 0},
      fc::DecodeWorkItem{cb.slice(0), b.q.data(),
                         out_batch.data() + 64 * kDim, 64, 0, 0}};
  std::vector<fa::FtReport> per(2);
  const fa::FtReport agg = fc::efta_decode_batch(items, {}, nullptr, per);
  EXPECT_EQ(agg.total_detected(), 0u);

  fa::FtReport serial;
  items[0].out = out_serial.data();
  items[1].out = out_serial.data() + 64 * kDim;
  serial += fc::efta_decode_block(items[0]);
  serial += fc::efta_decode_block(items[1]);
  for (std::size_t i = 0; i < out_batch.size(); ++i) {
    ASSERT_EQ(out_batch[i], out_serial[i]) << i;
  }
  EXPECT_EQ(agg.gemm1.checks, serial.gemm1.checks);
  EXPECT_EQ(per[0].gemm1.checks + per[1].gemm1.checks, agg.gemm1.checks);

  // Malformed items are rejected up front with the offending index.
  std::vector<fc::DecodeWorkItem> bad{
      fc::DecodeWorkItem{ca.slice(0), a.q.data(), out_batch.data(), 65, 0,
                         0}};  // block larger than the 64-row kernel tile
  EXPECT_THROW(fc::efta_decode_batch(bad), std::invalid_argument);
  bad[0] = fc::DecodeWorkItem{ca.slice(0), a.q.data(), out_batch.data(), 0,
                              0, 0};  // empty block
  EXPECT_THROW(fc::efta_decode_batch(bad), std::invalid_argument);
  fs::KvCache tiny(1, kDim);
  tiny.append_chunk({a.k.data(), 2 * kDim}, {a.v.data(), 2 * kDim}, 2);
  bad[0] = fc::DecodeWorkItem{tiny.slice(0), a.q.data(), out_batch.data(), 3,
                              0, 0};  // cache doesn't hold the block's rows
  EXPECT_THROW(fc::efta_decode_batch(bad), std::invalid_argument);
}

TEST(Prefill, FaultCampaignStillCorrects) {
  constexpr std::size_t kDim = 64, kTokens = 100;
  const TokenStream ts(kTokens, kDim, 0xfa117);
  fs::KvCache cache(1, kDim);
  cache.append_chunk({ts.k.data(), kTokens * kDim},
                     {ts.v.data(), kTokens * kDim}, kTokens);

  // Clean reference for the final chunk (rows 64..99 over the full cache).
  std::vector<float> clean(36 * kDim);
  const auto item = [&](std::vector<float>& out) {
    return fc::DecodeWorkItem{cache.slice(0), ts.q.data() + 64 * kDim,
                              out.data(), 36, 0, 0};
  };
  {
    auto it = item(clean);
    fc::efta_decode_block(it);
  }

  auto trial = [&](ff::FaultInjector& inj) -> ff::TrialResult {
    std::vector<float> out(36 * kDim);
    auto it = item(out);
    const fa::FtReport r = fc::efta_decode_block(it, {}, &inj);
    float dev = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const float d = std::fabs(out[i] - clean[i]);
      dev = std::isfinite(d) ? std::max(dev, d) : 1e30f;
    }
    return {dev, r.total_detected() > 0};
  };

  ff::CampaignConfig cfg;
  cfg.sites = {ff::Site::kGemm1, ff::Site::kExp, ff::Site::kGemm2};
  cfg.call_offsets = {0, 33, 77, 150};
  cfg.bits = {30, 24, 20};
  const ff::CampaignStats stats = ff::run_campaign(cfg, trial);
  EXPECT_GT(stats.injected, 0u);
  EXPECT_GT(stats.detected, 0u);
  EXPECT_GE(stats.absorption_rate(), 0.95);
  EXPECT_LT(stats.worst_deviation, 5e-2f);
}

// ---------------------------------------------------------------------------
// Continuous-batching engine front-end.
// ---------------------------------------------------------------------------

namespace {

fx::ModelConfig serving_config() {
  fx::ModelConfig cfg = fx::ModelConfig::tiny();
  cfg.causal = true;  // decode == causal attention over the prefix
  return cfg;
}

ft::MatrixF random_prompt(std::size_t seq, std::size_t hidden,
                          std::uint64_t seed) {
  ft::MatrixF m(seq, hidden);
  ft::fill_normal(m, seed);
  return m;
}

}  // namespace

TEST(Engine, BatchedTickBitIdenticalToSingleRequestEngines) {
  const fx::Model model(serving_config(), 0xabc);
  const std::size_t hidden = model.config().hidden;
  const std::size_t prompt_lens[] = {5, 12, 33};

  fs::DecodeEngine batched(model);
  std::vector<fs::DecodeEngine::RequestId> ids;
  std::vector<ft::MatrixF> prompts;
  for (std::size_t i = 0; i < std::size(prompt_lens); ++i) {
    prompts.push_back(random_prompt(prompt_lens[i], hidden, 7000 + i));
    ids.push_back(batched.submit(prompts.back()));
  }
  // submit() is enqueue-only: no compute, no admission yet.
  EXPECT_EQ(batched.queued(), 3u);
  EXPECT_EQ(batched.active(), 0u);
  EXPECT_EQ(batched.lifetime().active, 0u);
  EXPECT_EQ(batched.state(ids[0]), fs::RequestState::kQueued);

  // Tick 1 admits all three and absorbs each prompt in one chunk.
  const auto tick1 = batched.step();
  EXPECT_EQ(tick1.admitted, 3u);
  EXPECT_EQ(tick1.prefill_chunks, 3u);
  EXPECT_EQ(tick1.prefill_rows, 5u + 12u + 33u);
  EXPECT_EQ(tick1.active, 5u + 12u + 33u);
  EXPECT_EQ(tick1.decoded, 0u);
  EXPECT_GT(tick1.linear.checks, 0u);
  EXPECT_GT(tick1.attention.gemm1.checks, 0u);
  EXPECT_EQ(batched.state(ids[2]), fs::RequestState::kDecoding);

  const auto stats = batched.drain(4);
  EXPECT_EQ(stats.decoded, 12u);  // 3 sequences x 4 token-steps
  EXPECT_EQ(stats.active, 12u);
  EXPECT_GT(stats.attention.gemm1.checks, 0u);
  EXPECT_GT(stats.linear.checks, 0u);
  // Decode ticks verify per token (chunk = 1): tolerate threshold noise.
  EXPECT_LE(stats.attention.total_detected(),
            stats.attention.gemm1.checks / 1000 + 2);

  for (std::size_t i = 0; i < prompts.size(); ++i) {
    fs::DecodeEngine solo(model);
    const auto id = solo.submit(prompts[i]);
    solo.drain(5);  // 1 prefill tick + 4 decode ticks
    EXPECT_EQ(batched.context_length(ids[i]), prompt_lens[i] + 4);
    const auto hb = batched.hidden(ids[i]);
    const auto hs = solo.hidden(id);
    ASSERT_EQ(hb.size(), hs.size());
    for (std::size_t c = 0; c < hb.size(); ++c) {
      EXPECT_EQ(hb[c], hs[c]) << "request " << i << " c " << c;
    }
  }
}

TEST(Engine, ChunkedPrefillBitIdenticalToSerialTokenByToken) {
  const fx::Model model(serving_config(), 0x5ca1e);
  const std::size_t hidden = model.config().hidden;
  // A long prompt (3 chunks: 64 + 64 + 22) interleaving with two short
  // requests that are already decoding while it prefills.
  const std::size_t lens[] = {20, 150, 7};
  const std::size_t budgets[] = {7, 5, 9};

  // Generation budgets make each request's trajectory scheduling-invariant:
  // request r always decodes exactly budgets[r] tokens, no matter how its
  // ticks interleave with the others', so engines with different chunk
  // sizes land on comparable final states.
  auto run = [&](std::size_t chunk_rows) {
    fs::EngineOptions opt;
    opt.prefill_chunk_rows = chunk_rows;
    // Chunk-size invariance is an fp16 property: chunking changes *when* a
    // tile seals relative to the reads against it, and a kI8 seal is lossy,
    // so different chunkings read different (quantized vs open-fp16) bits.
    // Pin fp16 explicitly so the FTT_KV_QUANT leg keeps the test meaningful.
    opt.kv_quant = false;
    fs::DecodeEngine engine(model, opt);
    std::vector<fs::DecodeEngine::RequestId> ids;
    for (std::size_t i = 0; i < std::size(lens); ++i) {
      ids.push_back(
          engine.submit(random_prompt(lens[i], hidden, 9000 + i), budgets[i]));
    }
    engine.run_until_idle(nullptr, 4000);
    std::vector<std::vector<float>> h;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(engine.state(ids[i]), fs::RequestState::kRetired);
      EXPECT_EQ(engine.context_length(ids[i]), lens[i] + budgets[i]);
      const auto s = engine.hidden(ids[i]);
      h.emplace_back(s.begin(), s.end());
    }
    EXPECT_EQ(engine.kv_tiles_in_use(), 0u);  // retirement frees the tiles
    return h;
  };

  const auto chunked = run(64);   // production: tile-sized prefill chunks
  const auto serial = run(1);     // serial token-by-token prefill
  ASSERT_EQ(chunked.size(), serial.size());
  for (std::size_t r = 0; r < chunked.size(); ++r) {
    ASSERT_EQ(chunked[r].size(), serial[r].size());
    for (std::size_t c = 0; c < chunked[r].size(); ++c) {
      EXPECT_EQ(chunked[r][c], serial[r][c]) << "request " << r << " c " << c;
    }
  }

  // And both match a solo engine running only the long request.
  fs::EngineOptions solo_opt;
  solo_opt.kv_quant = false;  // same pinned format as the runs above
  fs::DecodeEngine solo(model, solo_opt);
  const auto sid =
      solo.submit(random_prompt(lens[1], hidden, 9001), budgets[1]);
  solo.run_until_idle(nullptr, 4000);
  const auto hs = solo.hidden(sid);
  ASSERT_EQ(hs.size(), chunked[1].size());
  for (std::size_t c = 0; c < hs.size(); ++c) {
    EXPECT_EQ(chunked[1][c], hs[c]) << c;
  }
}

TEST(Engine, CacheBackedGenerationMatchesFullRecompute) {
  const fx::Model model(serving_config(), 0xdef);
  const std::size_t hidden = model.config().hidden;

  fs::EngineOptions opt;
  opt.record_inputs = true;  // keep the replay history this test compares
  // The from-scratch recompute below never touches the KV cache, so the
  // comparison is only bitwise for the lossless fp16 format — pin it
  // explicitly (the FTT_KV_QUANT leg flips the default to kI8).
  opt.kv_quant = false;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(random_prompt(40, hidden, 0xfeed));
  engine.step();     // admit + one-chunk prefill of the 40 prompt rows
  engine.drain(24);  // total context 64: a full efta_attention block
  ASSERT_EQ(engine.context_length(id), 64u);

  // A from-scratch protected forward over exactly the rows the engine fed
  // must land on the same final hidden state (the KV cache only avoids
  // recomputation, never changes the math beyond summation order).
  ft::MatrixF x = engine.fed_inputs(id);
  ASSERT_EQ(x.rows(), 64u);
  model.forward(x, fx::AttentionKind::kEfta, /*protect_linear=*/true);
  const auto h = engine.hidden(id);
  for (std::size_t c = 0; c < hidden; ++c) {
    EXPECT_NEAR(h[c], x(x.rows() - 1, c), 5e-3f) << c;
  }
}

TEST(Engine, CorrectsInjectedFaultDuringDecode) {
  const fx::Model model(serving_config(), 0x123);
  const std::size_t hidden = model.config().hidden;
  const ft::MatrixF prompt = random_prompt(20, hidden, 0xbeef);

  fs::DecodeEngine clean_engine(model);
  const auto cid = clean_engine.submit(prompt);
  clean_engine.drain(4);  // prefill tick + 3 decode ticks

  fs::DecodeEngine faulty_engine(model);
  const auto fid = faulty_engine.submit(prompt);
  faulty_engine.drain(3);  // prefill tick + 2 decode ticks
  auto inj = ff::FaultInjector::single(ff::Site::kGemm1, 7, 30);
  const auto stats = faulty_engine.step(&inj);
  EXPECT_EQ(stats.attention.faults_injected, 1u);
  EXPECT_GE(stats.attention.total_detected(), 1u);
  EXPECT_GE(faulty_engine.report(fid).total_detected(), 1u);

  const auto hc = clean_engine.hidden(cid);
  const auto hf = faulty_engine.hidden(fid);
  for (std::size_t c = 0; c < hidden; ++c) {
    EXPECT_NEAR(hf[c], hc[c], 1e-2f) << c;
  }
}

TEST(Engine, FinishReleasesRequestAndReclaimsTiles) {
  const fx::Model model(serving_config(), 0x321);
  fs::DecodeEngine engine(model);
  const auto a = engine.submit(random_prompt(8, model.config().hidden, 1));
  const auto b = engine.submit(random_prompt(16, model.config().hidden, 2));
  engine.step();  // admit + prefill both
  EXPECT_EQ(engine.active(), 2u);
  const std::size_t tiles_before = engine.kv_tiles_in_use();
  EXPECT_GT(tiles_before, 0u);

  engine.finish(a);
  EXPECT_FALSE(engine.is_active(a));
  EXPECT_EQ(engine.state(a), fs::RequestState::kRetired);
  EXPECT_EQ(engine.active(), 1u);
  EXPECT_LT(engine.kv_tiles_in_use(), tiles_before);  // tiles reclaimed
  EXPECT_EQ(engine.context_length(a), 8u);  // history survives retirement

  const auto stats = engine.step();
  EXPECT_EQ(stats.decoded, 1u);  // only b advanced
  EXPECT_EQ(stats.active, 1u);
  EXPECT_EQ(engine.context_length(b), 17u);
  EXPECT_EQ(engine.fed_inputs(a).rows(), 0u);  // history freed on retirement
  EXPECT_FALSE(engine.hidden(a).empty());      // last hidden stays readable
  EXPECT_THROW((void)engine.hidden(99), std::out_of_range);

  // finish() also cancels a request that was never admitted.
  fs::EngineOptions opt;
  opt.scheduler.max_batch_size = 1;
  fs::DecodeEngine small(model, opt);
  small.submit(random_prompt(4, model.config().hidden, 3));
  const auto waiting = small.submit(random_prompt(4, model.config().hidden, 4));
  small.step();
  EXPECT_EQ(small.state(waiting), fs::RequestState::kQueued);
  small.finish(waiting);
  EXPECT_EQ(small.state(waiting), fs::RequestState::kRetired);
  EXPECT_EQ(small.queued(), 0u);
}

TEST(Engine, IdleTickIsFreeAndZeroed) {
  const fx::Model model(serving_config(), 0x99);
  fs::DecodeEngine engine(model);

  // Regression: a tick with zero admitted requests must return zeroed stats
  // without entering the batched compute path (no OpenMP team spin-up).
  const auto idle = engine.step();
  EXPECT_EQ(idle.active, 0u);
  EXPECT_EQ(idle.admitted, 0u);
  EXPECT_EQ(idle.prefill_chunks, 0u);
  EXPECT_EQ(idle.prefill_rows, 0u);
  EXPECT_EQ(idle.decoded, 0u);
  EXPECT_EQ(idle.retired, 0u);
  EXPECT_EQ(idle.attention.gemm1.checks, 0u);
  EXPECT_EQ(idle.linear.checks, 0u);
  EXPECT_EQ(engine.lifetime().active, 0u);

  // Same after the last request retires.
  const auto id = engine.submit(
      random_prompt(4, model.config().hidden, 5), /*max_new_tokens=*/2);
  engine.run_until_idle(nullptr, 100);
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  const auto after = engine.step();
  EXPECT_EQ(after.active, 0u);
  EXPECT_EQ(after.attention.gemm1.checks, 0u);
}

TEST(Engine, RejectsBadOptionsAtConstruction) {
  const fx::Model model(serving_config(), 0x55);
  fs::EngineOptions opt;
  opt.efta.stride = 3;  // head_dim 64 is not a multiple of 3
  EXPECT_THROW(fs::DecodeEngine(model, opt), std::invalid_argument);

  fs::EngineOptions chunk0;
  chunk0.prefill_chunk_rows = 0;
  EXPECT_THROW(fs::DecodeEngine(model, chunk0), std::invalid_argument);
  fs::EngineOptions chunk65;
  chunk65.prefill_chunk_rows = 65;
  EXPECT_THROW(fs::DecodeEngine(model, chunk65), std::invalid_argument);
}

TEST(Engine, RetiresCappedRequestWithoutStallingTheBatch) {
  const fx::Model model(serving_config(), 0x77);
  fs::EngineOptions opt;
  opt.max_context = 12;
  fs::DecodeEngine engine(model, opt);
  const auto a = engine.submit(random_prompt(10, model.config().hidden, 4));
  const auto b = engine.submit(random_prompt(4, model.config().hidden, 5));

  // a caps out after 2 generated tokens; b keeps going to its own cap.
  engine.drain(6);  // prefill tick + 5 decode ticks (a retires mid-way)
  EXPECT_FALSE(engine.is_active(a));
  EXPECT_TRUE(engine.is_active(b));
  EXPECT_EQ(engine.context_length(a), 12u);
  EXPECT_EQ(engine.context_length(b), 9u);
  EXPECT_FALSE(engine.hidden(a).empty());

  // Prompts beyond the cap are rejected outright.
  EXPECT_THROW(engine.submit(random_prompt(13, model.config().hidden, 6)),
               std::invalid_argument);
}

TEST(Engine, HugeBudgetSaturatesAtMaxContext) {
  // Regression: prompt_rows + SIZE_MAX must saturate at max_context, not
  // wrap below the prompt and under-reserve KV tiles.
  const fx::Model model(serving_config(), 0x41);
  fs::EngineOptions opt;
  opt.max_context = 130;
  fs::DecodeEngine engine(model, opt);
  const auto id = engine.submit(random_prompt(129, model.config().hidden, 9),
                                std::numeric_limits<std::size_t>::max());
  engine.run_until_idle(nullptr, 100);
  EXPECT_EQ(engine.state(id), fs::RequestState::kRetired);
  EXPECT_EQ(engine.context_length(id), 130u);  // one generated token
}

TEST(Engine, TokenBudgetRetiresAndLifetimeMatchesSteps) {
  const fx::Model model(serving_config(), 0x31);
  fs::DecodeEngine engine(model);
  const auto a = engine.submit(random_prompt(70, model.config().hidden, 6),
                               /*max_new_tokens=*/3);
  fs::DecodeEngine::StepStats sum;
  std::size_t ticks = 0;
  while ((engine.queued() != 0 || engine.active() != 0) && ticks < 100) {
    sum += engine.step();
    ++ticks;
  }
  EXPECT_EQ(engine.state(a), fs::RequestState::kRetired);
  EXPECT_EQ(engine.context_length(a), 73u);
  // 70-row prompt = 2 chunks (64 + 6), then 3 decode ticks, then the
  // retirement tick.
  EXPECT_EQ(sum.prefill_chunks, 2u);
  EXPECT_EQ(sum.prefill_rows, 70u);
  EXPECT_EQ(sum.decoded, 3u);
  EXPECT_EQ(sum.retired, 1u);

  // All compute happens inside ticks: lifetime() is exactly the sum of the
  // per-step stats.
  const auto& life = engine.lifetime();
  EXPECT_EQ(life.active, sum.active);
  EXPECT_EQ(life.prefill_rows, sum.prefill_rows);
  EXPECT_EQ(life.decoded, sum.decoded);
  EXPECT_EQ(life.attention.gemm1.checks, sum.attention.gemm1.checks);
  EXPECT_EQ(life.attention.exp_check.checks, sum.attention.exp_check.checks);
  EXPECT_EQ(life.attention.gemm2.checks, sum.attention.gemm2.checks);
  EXPECT_EQ(life.linear.checks, sum.linear.checks);
}
