// LayerNorm, range-restricted GELU, feed-forward block.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"
#include "transformer/layers.hpp"

namespace ftx = ftt::transformer;
namespace ft = ftt::tensor;
namespace ff = ftt::fault;

TEST(LayerNorm, NormalizesRows) {
  ftx::LayerNorm ln(64);
  ft::MatrixF x(8, 64);
  ft::fill_normal(x, 1, 3.0f, 2.0f);
  ln.forward(x);
  for (std::size_t r = 0; r < 8; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 64; ++c) mean += x(r, c);
    mean /= 64.0;
    for (std::size_t c = 0; c < 64; ++c) {
      var += (x(r, c) - mean) * (x(r, c) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  ftx::LayerNorm ln(4);
  ln.gamma().assign(4, 2.0f);
  ln.beta().assign(4, 1.0f);
  ft::MatrixF x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 1.0f;
  x(0, 3) = 2.0f;
  ln.forward(x);
  double mean = 0.0;
  for (std::size_t c = 0; c < 4; ++c) mean += x(0, c);
  EXPECT_NEAR(mean / 4.0, 1.0, 1e-4);  // beta shifts the mean
}

TEST(Gelu, MatchesKnownValues) {
  ftx::RangeRestrictedGelu g;
  g.restrict_range = false;
  ft::MatrixF x(1, 3);
  x(0, 0) = 0.0f;
  x(0, 1) = 1.0f;
  x(0, 2) = -1.0f;
  g.forward(x);
  EXPECT_NEAR(x(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(x(0, 1), 0.8412f, 1e-3f);
  EXPECT_NEAR(x(0, 2), -0.1588f, 1e-3f);
}

TEST(Gelu, MonotoneAboveZero) {
  ftx::RangeRestrictedGelu g;
  ft::MatrixF x(1, 100);
  for (std::size_t c = 0; c < 100; ++c) x(0, c) = 0.1f * c;
  g.forward(x);
  for (std::size_t c = 1; c < 100; ++c) EXPECT_GE(x(0, c), x(0, c - 1));
}

TEST(Gelu, RestrictionClampsImpossibleValues) {
  // A fault making the activation hugely negative is impossible for GELU
  // (global min ~ -0.17): restriction pins it back.
  ftx::RangeRestrictedGelu g;
  ft::MatrixF x(1, 4);
  x(0, 0) = 1.0f;
  x(0, 1) = 2.0f;
  x(0, 2) = 3.0f;
  x(0, 3) = 4.0f;
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 2, 31);  // sign flip
  const std::size_t clipped = g.forward(x, &inj);
  EXPECT_EQ(clipped, 1u);
  EXPECT_GE(x(0, 2), -0.1701f);
}

TEST(Gelu, RestrictionPassesLegitimateValues) {
  ftx::RangeRestrictedGelu g;
  ft::MatrixF x(4, 64);
  ft::fill_normal(x, 2);
  EXPECT_EQ(g.forward(x), 0u);
}

TEST(FeedForward, CleanProtectedMatchesUnprotected) {
  ftx::FeedForward ffn(128, 256, 3);
  ft::MatrixF x(8, 128);
  ft::fill_normal(x, 4);
  ft::MatrixF y0(8, 128), y1(8, 128);
  ffn.forward(x, y0, false);
  const auto res = ffn.forward(x, y1, true);
  EXPECT_EQ(res.abft.flagged, 0u);
  EXPECT_EQ(res.activations_clipped, 0u);
  EXPECT_LT(ft::max_abs_diff(y0, y1), 1e-6f);
}

TEST(FeedForward, CorrectsLinearFault) {
  ftx::FeedForward ffn(128, 256, 5);
  ft::MatrixF x(8, 128);
  ft::fill_normal(x, 6);
  ft::MatrixF ref(8, 128), y(8, 128);
  ffn.forward(x, ref, false);
  auto inj = ff::FaultInjector::single(ff::Site::kLinear, 500, 28);
  const auto res = ffn.forward(x, y, true, &inj);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_GE(res.abft.corrected + res.activations_clipped, 1u);
  EXPECT_LT(ft::max_abs_diff(ref, y), 0.05f);
}

TEST(FeedForwardCosts, InnerDimDominates) {
  ftx::FeedForward ffn(128, 512, 7);
  const auto c = ffn.costs(64).total();
  EXPECT_DOUBLE_EQ(c.tc_flops, 2.0 * (2.0 * 64 * 128 * 512));
  EXPECT_GT(ffn.protection_costs(64).total().fp32_flops, 0.0);
}
