// Software binary16: conversions, rounding, special values.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "numeric/bits.hpp"
#include "numeric/fp16.hpp"

namespace fn = ftt::numeric;

TEST(Fp16, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(fn::round_to_half(f), f) << i;
  }
}

TEST(Fp16, ZeroAndSigns) {
  EXPECT_EQ(fn::Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(fn::Half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(fn::Half(0.0f), fn::Half(-0.0f));
}

TEST(Fp16, MaxFinite) {
  EXPECT_EQ(fn::round_to_half(65504.0f), 65504.0f);
  // 65519.99 rounds down to max finite; >= 65520 rounds to infinity.
  EXPECT_EQ(fn::round_to_half(65519.0f), 65504.0f);
  EXPECT_TRUE(fn::Half(65520.0f).is_inf());
  EXPECT_TRUE(fn::Half(1e10f).is_inf());
  EXPECT_TRUE(fn::Half(-1e10f).is_inf());
}

TEST(Fp16, Infinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(fn::Half(inf).is_inf());
  EXPECT_TRUE(fn::Half(-inf).is_inf());
  EXPECT_EQ(fn::Half(inf).to_float(), inf);
  EXPECT_EQ(fn::Half(-inf).to_float(), -inf);
}

TEST(Fp16, NaN) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(fn::Half(nan).is_nan());
  EXPECT_TRUE(std::isnan(fn::Half(nan).to_float()));
  EXPECT_FALSE(fn::Half(nan) == fn::Half(nan));
}

TEST(Fp16, SubnormalRange) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(fn::round_to_half(tiny), tiny);
  EXPECT_EQ(fn::Half(tiny).bits(), 0x0001u);
  // Half of that rounds to zero (ties-to-even).
  EXPECT_EQ(fn::round_to_half(tiny / 2.0f), 0.0f);
  // 0.75 * tiny rounds up to tiny.
  EXPECT_EQ(fn::round_to_half(tiny * 0.75f), tiny);
}

TEST(Fp16, MinNormal) {
  EXPECT_EQ(fn::round_to_half(fn::kHalfMinNormal), fn::kHalfMinNormal);
  EXPECT_EQ(fn::Half(fn::kHalfMinNormal).bits(), 0x0400u);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even -> 1.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(fn::round_to_half(halfway), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
  // -> 1 + 2^-9 (even mantissa).
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(fn::round_to_half(halfway2), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Fp16, RoundTripAllBitPatterns) {
  // Every finite half value must survive half -> float -> half exactly.
  for (std::uint32_t h = 0; h < 65536; ++h) {
    const auto hb = static_cast<std::uint16_t>(h);
    const float f = fn::half_bits_to_float(hb);
    if (std::isnan(f)) continue;
    EXPECT_EQ(fn::float_to_half_bits(f), hb) << std::hex << h;
  }
}

TEST(Fp16, MatchesCompilerFloat16) {
  // Cross-check against the compiler's _Float16 on random values.
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-70000.0f, 70000.0f);
  for (int i = 0; i < 200000; ++i) {
    const float f = dist(rng);
    const auto ref = static_cast<_Float16>(f);
    std::uint16_t ref_bits;
    std::memcpy(&ref_bits, &ref, sizeof(ref_bits));
    EXPECT_EQ(fn::float_to_half_bits(f), ref_bits) << f;
  }
}

TEST(Fp16, MatchesCompilerFloat16Small) {
  std::mt19937 rng(43);
  std::uniform_real_distribution<float> dist(-1e-4f, 1e-4f);
  for (int i = 0; i < 200000; ++i) {
    const float f = dist(rng);
    const auto ref = static_cast<_Float16>(f);
    std::uint16_t ref_bits;
    std::memcpy(&ref_bits, &ref, sizeof(ref_bits));
    EXPECT_EQ(fn::float_to_half_bits(f), ref_bits) << f;
  }
}

TEST(Fp16, UnitRoundoffConstant) {
  // kHalfEps is 2^-11: 1 + eps must round away from 1... exactly at the
  // boundary it ties to even (1), just above it must round up.
  EXPECT_EQ(fn::round_to_half(1.0f + 1.5f * fn::kHalfEps),
            1.0f + 2.0f * fn::kHalfEps);
}

TEST(Fp16Bulk, ScalarBulkMatchesElementwise) {
  // The scalar bulk entry points are definitionally the per-element
  // conversions; pin that down over every half bit pattern.
  std::vector<fn::Half> halves(65536);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    halves[h] = fn::Half::from_bits(static_cast<std::uint16_t>(h));
  }
  std::vector<float> widened(65536);
  fn::halves_to_floats_scalar(halves.data(), widened.data(), halves.size());
  std::vector<fn::Half> narrowed(65536);
  fn::floats_to_halves_scalar(widened.data(), narrowed.data(), widened.size());
  for (std::uint32_t h = 0; h < 65536; ++h) {
    std::uint32_t wide_bits, ref_bits = fn::half_bits_to_float_bits(
        static_cast<std::uint16_t>(h));
    std::memcpy(&wide_bits, &widened[h], sizeof(wide_bits));
    ASSERT_EQ(wide_bits, ref_bits) << std::hex << h;
    ASSERT_EQ(narrowed[h].bits(), fn::float_to_half_bits(widened[h]))
        << std::hex << h;
  }
}

TEST(Fp16Bulk, ExhaustiveSimdMatchesScalarAllHalfPatterns) {
  // All 65536 half bit patterns — NaNs, infinities, subnormals, both zeros —
  // must round-trip identically through the scalar and SIMD paths: widening
  // bit-equal, and the widened values narrowing back bit-equal (the SIMD
  // narrow canonicalizes NaN payloads exactly like the scalar path).
  if (!fn::simd_fp16_active()) {
    GTEST_SKIP() << "F16C/AVX2 unavailable (or FTT_SIMD=OFF): SIMD leg skipped";
  }
  std::vector<fn::Half> halves(65536);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    halves[h] = fn::Half::from_bits(static_cast<std::uint16_t>(h));
  }
  std::vector<float> wide_scalar(65536), wide_simd(65536);
  fn::halves_to_floats_scalar(halves.data(), wide_scalar.data(), 65536);
  fn::halves_to_floats(halves.data(), wide_simd.data(), 65536);
  ASSERT_EQ(std::memcmp(wide_scalar.data(), wide_simd.data(),
                        65536 * sizeof(float)),
            0);

  std::vector<fn::Half> back_scalar(65536), back_simd(65536);
  fn::floats_to_halves_scalar(wide_scalar.data(), back_scalar.data(), 65536);
  fn::floats_to_halves(wide_scalar.data(), back_simd.data(), 65536);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    ASSERT_EQ(back_scalar[h].bits(), back_simd[h].bits()) << std::hex << h;
  }
}

TEST(Fp16Bulk, SimdNarrowMatchesScalarOnHardFloats) {
  if (!fn::simd_fp16_active()) {
    GTEST_SKIP() << "F16C/AVX2 unavailable (or FTT_SIMD=OFF): SIMD leg skipped";
  }
  // Random floats across the interesting magnitude range plus crafted
  // boundary patterns: RTNE ties, the overflow cliff, subnormal cliff,
  // signed zeros, infinities, and NaNs with assorted payloads (the SIMD
  // path must canonicalize them to the scalar path's quiet NaN).
  std::vector<float> values;
  const auto from_bits = [](std::uint32_t b) {
    float f;
    std::memcpy(&f, &b, sizeof(f));
    return f;
  };
  for (const std::uint32_t b :
       {0x00000000u, 0x80000000u, 0x7F800000u, 0xFF800000u, 0x7FC00000u,
        0xFFC00000u, 0x7F800001u, 0x7FC00123u, 0xFFABCDEFu, 0x00000001u,
        0x33000000u, 0x33000001u, 0x38800000u, 0x477FF000u, 0x477FEFFFu,
        0x47800000u, 0x3F802000u, 0x3F806000u}) {
    values.push_back(from_bits(b));
  }
  std::mt19937 rng(0xf16c);
  std::uniform_real_distribution<float> wide(-70000.0f, 70000.0f);
  std::uniform_real_distribution<float> tiny(-1e-4f, 1e-4f);
  for (int i = 0; i < 100000; ++i) {
    values.push_back(wide(rng));
    values.push_back(tiny(rng));
  }
  // Odd length exercises the scalar tail of the 8-wide kernel.
  values.push_back(1.0f);

  std::vector<fn::Half> scalar(values.size()), simd(values.size());
  fn::floats_to_halves_scalar(values.data(), scalar.data(), values.size());
  fn::floats_to_halves(values.data(), simd.data(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(scalar[i].bits(), simd[i].bits()) << "value " << values[i];
  }
}

TEST(BitFlip, SingleBitF32) {
  const float v = 3.14159f;
  for (unsigned bit = 0; bit < 32; ++bit) {
    const float f = fn::flip_bit_f32(v, bit);
    EXPECT_EQ(fn::hamming_f32(v, f), 1) << bit;
    EXPECT_EQ(fn::flip_bit_f32(f, bit), v) << "involution";
  }
}

TEST(BitFlip, SignBit) {
  EXPECT_EQ(fn::flip_bit_f32(2.5f, 31), -2.5f);
}

TEST(BitFlip, ExponentBitMagnitude) {
  // Flipping the top exponent bit of a sub-one normal number is a huge
  // perturbation (for values >= 1 it lands on the NaN/Inf exponent instead).
  const float v = 0.5f;
  EXPECT_GT(std::fabs(fn::flip_delta_f32(v, 30)), 1e30f);
  EXPECT_TRUE(std::isnan(fn::flip_bit_f32(1.5f, 30)));
}

TEST(BitFlip, HalfBits) {
  const std::uint16_t h = fn::Half(1.0f).bits();
  EXPECT_EQ(fn::flip_bit_f16(fn::flip_bit_f16(h, 5), 5), h);
  EXPECT_NE(fn::flip_bit_f16(h, 5), h);
}
