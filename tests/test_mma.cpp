// SM80 MMA atom layout and TiledMMA thread-ownership properties — the
// hardware facts the strided ABFT design rests on (paper Figs. 6-7).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/mma.hpp"
#include "tensor/random.hpp"

namespace fs = ftt::sim;
namespace ft = ftt::tensor;
using ftt::numeric::Half;

TEST(MmaAtom, CFragmentCoversTileExactlyOnce) {
  // 32 lanes x 4 regs must cover the 16x8 accumulator bijectively.
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < 32; ++lane) {
    for (int reg = 0; reg < 4; ++reg) {
      const auto [row, col] = fs::MmaAtom::c_element(lane, reg);
      EXPECT_GE(row, 0);
      EXPECT_LT(row, 16);
      EXPECT_GE(col, 0);
      EXPECT_LT(col, 8);
      EXPECT_TRUE(seen.emplace(row, col).second) << row << "," << col;
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(MmaAtom, CCoordInvertsCElement) {
  for (int lane = 0; lane < 32; ++lane) {
    for (int reg = 0; reg < 4; ++reg) {
      const auto [row, col] = fs::MmaAtom::c_element(lane, reg);
      const fs::RegCoord rc = fs::MmaAtom::c_coord(row, col);
      EXPECT_EQ(rc.lane, lane);
      EXPECT_EQ(rc.reg, reg);
    }
  }
}

TEST(MmaAtom, AFragmentEightRegsPerLane) {
  // Each lane must own exactly 8 of the 256 A elements.
  std::map<int, int> count;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      const auto rc = fs::MmaAtom::a_coord(r, c);
      EXPECT_GE(rc.reg, 0);
      EXPECT_LT(rc.reg, 8);
      ++count[rc.lane];
    }
  }
  ASSERT_EQ(count.size(), 32u);
  for (const auto& [lane, n] : count) EXPECT_EQ(n, 8) << lane;
}

TEST(MmaAtom, BFragmentFourRegsPerLane) {
  std::map<int, int> count;
  for (int k = 0; k < 16; ++k) {
    for (int c = 0; c < 8; ++c) {
      const auto rc = fs::MmaAtom::b_coord(k, c);
      EXPECT_GE(rc.reg, 0);
      EXPECT_LT(rc.reg, 4);
      ++count[rc.lane];
    }
  }
  ASSERT_EQ(count.size(), 32u);
  for (const auto& [lane, n] : count) EXPECT_EQ(n, 4) << lane;
}

TEST(MmaAtom, PaperFig6Examples) {
  // Paper: A[0][0] in T0 V0, A[4][0] in T16 V0, A[8][0] back in T0.
  EXPECT_EQ(fs::MmaAtom::a_coord(0, 0).lane, 0);
  EXPECT_EQ(fs::MmaAtom::a_coord(4, 0).lane, 16);
  EXPECT_EQ(fs::MmaAtom::a_coord(8, 0).lane, 0);
}

TEST(MmaAtom, ComputesReferenceProduct) {
  ft::MatrixH A(16, 16), B(16, 8);
  ft::fill_normal(A, 1);
  ft::fill_normal(B, 2);
  ft::MatrixF C(16, 8, 0.0f);
  fs::MmaAtom::mma(A.data(), 16, B.data(), 8, C.data(), 8);
  for (int m = 0; m < 16; ++m) {
    for (int n = 0; n < 8; ++n) {
      float ref = 0.0f;
      for (int k = 0; k < 16; ++k) {
        ref += A(m, k).to_float() * B(k, n).to_float();
      }
      EXPECT_FLOAT_EQ(C(m, n), ref);
    }
  }
}

TEST(MmaAtom, AccumulatesIntoC) {
  ft::MatrixH A(16, 16), B(16, 8);
  ft::fill_normal(A, 3);
  ft::fill_normal(B, 4);
  ft::MatrixF C(16, 8, 1.0f);
  fs::MmaAtom::mma(A.data(), 16, B.data(), 8, C.data(), 8);
  ft::MatrixF C0(16, 8, 0.0f);
  fs::MmaAtom::mma(A.data(), 16, B.data(), 8, C0.data(), 8);
  for (std::size_t i = 0; i < C.size(); ++i) {
    // Seeding the accumulator changes intermediate rounding, so compare to a
    // small tolerance rather than bitwise.
    EXPECT_NEAR(C.data()[i], C0.data()[i] + 1.0f, 1e-5f);
  }
}

// --- The two layout properties the strided checksum design relies on ---

TEST(TiledMma, ColumnStride64SameThread) {
  // Paper Fig. 7: Q[0][0], Q[64][0], Q[128][0] all live in thread 0; in
  // general any (row, row+64) pair of an accumulator column shares a thread.
  for (std::size_t col = 0; col < 8; ++col) {
    for (std::size_t row = 0; row < 64; ++row) {
      const int t = fs::TiledMma64x16x16::thread_of_c(row, col);
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row + 64, col));
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row + 128, col));
    }
  }
  EXPECT_EQ(fs::TiledMma64x16x16::thread_of_c(0, 0), 0);
  EXPECT_EQ(fs::TiledMma64x16x16::thread_of_c(64, 0), 0);
}

TEST(TiledMma, RowStride8SameThread) {
  // Paper Fig. 7: K^T[0][0], K^T[0][8], K^T[0][16] share thread 0; any
  // (col, col+8) pair of an accumulator row shares a thread.
  for (std::size_t row = 0; row < 64; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      const int t = fs::TiledMma64x16x16::thread_of_c(row, col);
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row, col + 8));
      EXPECT_EQ(t, fs::TiledMma64x16x16::thread_of_c(row, col + 16));
    }
  }
  EXPECT_EQ(fs::TiledMma64x16x16::thread_of_b(0, 0), 0);
  EXPECT_EQ(fs::TiledMma64x16x16::thread_of_b(0, 8),
            fs::TiledMma64x16x16::thread_of_b(0, 0));
}

TEST(TiledMma, AdjacentColumnsNotSameThreadEverywhere) {
  // Sanity: stride 1 does NOT keep the thread fixed (otherwise the strided
  // design would be vacuous).
  bool any_differ = false;
  for (std::size_t col = 0; col + 1 < 8; ++col) {
    if (fs::TiledMma64x16x16::thread_of_c(0, col) !=
        fs::TiledMma64x16x16::thread_of_c(0, col + 1)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(TiledMma, FourWarpsAlongM) {
  // Rows 0..15 belong to warp 0, 16..31 to warp 1, etc.
  for (std::size_t row = 0; row < 64; ++row) {
    const int t = fs::TiledMma64x16x16::thread_of_c(row, 0);
    EXPECT_EQ(t / 32, static_cast<int>(row / 16)) << row;
  }
}

// --- Blocked GEMM wrappers ---

TEST(GemmFp16, MatchesAtomChain) {
  // gemm_fp16_nt over a 16x16x16 problem must agree bitwise with the atom
  // (same fp32 accumulation order along K).
  ft::MatrixH A(16, 16), Bt(8, 16);
  ft::fill_normal(A, 5);
  ft::fill_normal(Bt, 6);
  // Atom wants B as K x N; build it from Bt (N x K).
  ft::MatrixH B(16, 8);
  for (int k = 0; k < 16; ++k) {
    for (int n = 0; n < 8; ++n) B(k, n) = Bt(n, k);
  }
  ft::MatrixF C_atom(16, 8, 0.0f);
  fs::MmaAtom::mma(A.data(), 16, B.data(), 8, C_atom.data(), 8);
  ft::MatrixF C(16, 8, 0.0f);
  fs::gemm_fp16_nt(A, Bt, C);
  for (std::size_t i = 0; i < C.size(); ++i) {
    EXPECT_EQ(C.data()[i], C_atom.data()[i]);
  }
}

TEST(GemmFp16, AccumulateFlag) {
  ft::MatrixH A(4, 8), B(4, 8);
  ft::fill_normal(A, 7);
  ft::fill_normal(B, 8);
  ft::MatrixF C(4, 4, 0.0f), C2(4, 4, 0.0f);
  fs::gemm_fp16_nt(A, B, C, false);
  fs::gemm_fp16_nt(A, B, C2, false);
  fs::gemm_fp16_nt(A, B, C2, true);
  for (std::size_t i = 0; i < C.size(); ++i) {
    EXPECT_FLOAT_EQ(C2.data()[i], 2.0f * C.data()[i]);
  }
}

TEST(GemmF32H, RoundsLeftOperandThroughHalf) {
  // A value that is not fp16-representable must be rounded before the MAC.
  ft::MatrixF A(1, 1);
  A(0, 0) = 1.0f + ftt::numeric::kHalfEps * 0.25f;  // rounds to 1.0 in fp16
  ft::MatrixH B(1, 1);
  B(0, 0) = Half(2.0f);
  ft::MatrixF C(1, 1, 0.0f);
  fs::gemm_f32h_nn(A, B, C);
  EXPECT_FLOAT_EQ(C(0, 0), 2.0f);
}

TEST(GemmF32H, MatchesReference) {
  ft::MatrixF A(8, 16);
  ft::fill_normal(A, 9);
  ft::MatrixH B(16, 8);
  ft::fill_normal(B, 10);
  ft::MatrixF C(8, 8, 0.0f);
  fs::gemm_f32h_nn(A, B, C);
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t n = 0; n < 8; ++n) {
      float ref = 0.0f;
      for (std::size_t k = 0; k < 16; ++k) {
        ref += ftt::numeric::round_to_half(A(m, k)) * B(k, n).to_float();
      }
      EXPECT_NEAR(C(m, n), ref, 1e-5f);
    }
  }
}
